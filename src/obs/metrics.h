#ifndef EMX_OBS_METRICS_H_
#define EMX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace emx {
namespace obs {

// Process-wide metrics primitives: counters, gauges and fixed-bucket
// histograms, collected in named registries and snapshot-able as JSON at
// any time. Writers are lock-free (relaxed atomics); snapshots taken while
// writers run see a consistent-enough point-in-time view (each individual
// cell is atomic). One Global() registry serves the thread pool, kernels
// and the training loop; subsystems that need isolated numbers (e.g. one
// ServingMetrics per engine) own private registry instances and share the
// same primitives and JSON export path.

/// Monotonic event count.
class Counter {
 public:
  void Add(int64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Last-written (or running-max) scalar.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (lock-free CAS).
  void Max(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// Fixed-bucket histogram: bucket i counts samples <= bounds[i] (first
/// matching bucket wins); samples beyond the last bound land in an explicit
/// overflow cell — never silently clamped into the top bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Record(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  int64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  int64_t overflow() const { return overflow_.load(std::memory_order_relaxed); }
  /// Total samples including overflow.
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;

 private:
  std::vector<double> bounds_;  // ascending upper bounds
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> overflow_{0};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// bounds {start, start+width, ..., start+(count-1)*width}. With start 0,
/// width 1 the histogram counts small integers exactly.
std::vector<double> LinearBuckets(double start, double width, int count);
/// bounds {start, start*factor, start*factor^2, ...} — latency-style decades.
std::vector<double> ExponentialBuckets(double start, double factor, int count);

/// A named collection of metrics. Lookups register on first use and return
/// stable pointers that remain valid for the registry's lifetime, so hot
/// paths resolve a metric once and then touch only its atomics.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (never destroyed).
  static MetricsRegistry* Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` are used only on first registration; later calls with the
  /// same name return the existing histogram unchanged.
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  /// Point-in-time JSON snapshot:
  ///   {"counters": {..}, "gauges": {..},
  ///    "histograms": {name: {"bounds": [..], "counts": [..],
  ///                          "overflow": n, "count": n, "sum": x,
  ///                          "mean": x}}}
  /// Every double goes through AppendJsonDouble, so the output always
  /// strict-parses regardless of what writers stored.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;  // guards the maps, not the metric cells
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace emx

#endif  // EMX_OBS_METRICS_H_
