#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"

namespace emx {
namespace obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_.push_back(0);
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size());
  for (size_t i = 0; i < bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + v, std::memory_order_relaxed)) {
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  if (it == bounds_.end()) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buckets_[static_cast<size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
}

double Histogram::mean() const {
  const int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0;
}

std::vector<double> LinearBuckets(double start, double width, int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(std::max(count, 1)));
  for (int i = 0; i < std::max(count, 1); ++i) bounds.push_back(start + width * i);
  return bounds;
}

std::vector<double> ExponentialBuckets(double start, double factor, int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(std::max(count, 1)));
  double b = start;
  for (int i = 0; i < std::max(count, 1); ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(&out, name);
    out += ": " + std::to_string(c->Value());
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(&out, name);
    out += ": ";
    AppendJsonDouble(&out, g->Value(), 6);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(&out, name);
    out += ": {\"bounds\": [";
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      if (i > 0) out += ", ";
      AppendJsonDouble(&out, h->bounds()[i], 6);
    }
    out += "], \"counts\": [";
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h->bucket_count(i));
    }
    out += "], \"overflow\": " + std::to_string(h->overflow());
    out += ", \"count\": " + std::to_string(h->count());
    out += ", \"sum\": ";
    AppendJsonDouble(&out, h->sum(), 6);
    out += ", \"mean\": ";
    AppendJsonDouble(&out, h->mean(), 6);
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace obs
}  // namespace emx
