#include "tensor/autograd_ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/fused_attention.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace emx {
namespace autograd {
namespace {

/// Accumulates `delta` into the parent's gradient if it wants one.
void AccumulateGrad(const Variable& parent, const Tensor& delta) {
  if (parent.requires_grad()) {
    parent.node()->EnsureGrad().AddInPlace(delta);
  }
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  Tensor value = ops::Add(a.value(), b.value());
  return Variable::MakeOpResult(
      std::move(value), {a, b},
      [a, b](const Tensor& g) {
        AccumulateGrad(a, g);
        AccumulateGrad(b, g);
      },
      "add");
}

Variable Sub(const Variable& a, const Variable& b) {
  Tensor value = ops::Sub(a.value(), b.value());
  return Variable::MakeOpResult(
      std::move(value), {a, b},
      [a, b](const Tensor& g) {
        AccumulateGrad(a, g);
        if (b.requires_grad()) {
          Tensor neg = ops::MulScalar(g, -1.0f);
          AccumulateGrad(b, neg);
        }
      },
      "sub");
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor value = ops::Mul(a.value(), b.value());
  return Variable::MakeOpResult(
      std::move(value), {a, b},
      [a, b](const Tensor& g) {
        if (a.requires_grad()) AccumulateGrad(a, ops::Mul(g, b.value()));
        if (b.requires_grad()) AccumulateGrad(b, ops::Mul(g, a.value()));
      },
      "mul");
}

Variable MulScalar(const Variable& a, float s) {
  Tensor value = ops::MulScalar(a.value(), s);
  return Variable::MakeOpResult(
      std::move(value), {a},
      [a, s](const Tensor& g) { AccumulateGrad(a, ops::MulScalar(g, s)); },
      "mul_scalar");
}

Variable AddScalar(const Variable& a, float s) {
  Tensor value = ops::AddScalar(a.value(), s);
  return Variable::MakeOpResult(
      std::move(value), {a}, [a](const Tensor& g) { AccumulateGrad(a, g); },
      "add_scalar");
}

Variable AddBias(const Variable& x, const Variable& bias) {
  Tensor value = ops::AddBias(x.value(), bias.value());
  const int64_t h = bias.value().dim(0);
  return Variable::MakeOpResult(
      std::move(value), {x, bias},
      [x, bias, h](const Tensor& g) {
        AccumulateGrad(x, g);
        if (bias.requires_grad()) AccumulateGrad(bias, ops::SumToBias(g, h));
      },
      "add_bias");
}

Variable MatMul(const Variable& a, const Variable& b, bool trans_a,
                bool trans_b) {
  // Require identical batch dims (or both rank-2) so gradients never need
  // a broadcast reduction.
  const Shape& sa = a.value().shape();
  const Shape& sb = b.value().shape();
  EMX_CHECK(Shape(sa.begin(), sa.end() - 2) == Shape(sb.begin(), sb.end() - 2))
      << "autograd::MatMul requires equal batch dims: " << ShapeToString(sa)
      << " x " << ShapeToString(sb);
  Tensor value = ops::MatMul(a.value(), b.value(), trans_a, trans_b);
  return Variable::MakeOpResult(
      std::move(value), {a, b}, [a, b, trans_a, trans_b](const Tensor& g) {
        if (a.requires_grad()) {
          Tensor da;
          if (!trans_a && !trans_b) {
            da = ops::MatMul(g, b.value(), false, true);
          } else if (!trans_a && trans_b) {
            da = ops::MatMul(g, b.value(), false, false);
          } else if (trans_a && !trans_b) {
            da = ops::MatMul(b.value(), g, false, true);
          } else {
            da = ops::MatMul(b.value(), g, true, true);
          }
          AccumulateGrad(a, da);
        }
        if (b.requires_grad()) {
          Tensor db;
          if (!trans_a && !trans_b) {
            db = ops::MatMul(a.value(), g, true, false);
          } else if (!trans_a && trans_b) {
            db = ops::MatMul(g, a.value(), true, false);
          } else if (trans_a && !trans_b) {
            db = ops::MatMul(a.value(), g, false, false);
          } else {
            db = ops::MatMul(g, a.value(), true, true);
          }
          AccumulateGrad(b, db);
        }
      },
      "matmul");
}

Variable Reshape(const Variable& x, Shape shape) {
  Tensor value = x.value().Reshape(std::move(shape));
  if (!GradMode::IsEnabled()) {
    // No tape to protect: share storage with the input instead of cloning.
    return Variable::Constant(std::move(value));
  }
  const Shape orig = x.value().shape();
  return Variable::MakeOpResult(
      value.Clone(), {x},
      [x, orig](const Tensor& g) { AccumulateGrad(x, g.Reshape(orig)); },
      "reshape");
}

Variable Permute(const Variable& x, const std::vector<int64_t>& perm) {
  Tensor value = ops::Permute(x.value(), perm);
  std::vector<int64_t> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    inverse[static_cast<size_t>(perm[i])] = static_cast<int64_t>(i);
  }
  return Variable::MakeOpResult(
      std::move(value), {x},
      [x, inverse](const Tensor& g) {
        AccumulateGrad(x, ops::Permute(g, inverse));
      },
      "permute");
}

Variable PermuteReshape(const Variable& x, const std::vector<int64_t>& perm,
                        Shape shape) {
  Tensor permuted = ops::Permute(x.value(), perm);
  const Shape mid_shape = permuted.shape();
  // The reshaped result may share the permuted buffer: it is freshly
  // materialized here, so no aliasing with the input's tape can occur.
  Tensor value = permuted.Reshape(std::move(shape));
  std::vector<int64_t> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    inverse[static_cast<size_t>(perm[i])] = static_cast<int64_t>(i);
  }
  return Variable::MakeOpResult(
      std::move(value), {x},
      [x, mid_shape, inverse](const Tensor& g) {
        AccumulateGrad(x, ops::Permute(g.Reshape(mid_shape), inverse));
      },
      "permute_reshape");
}

Variable FusedAttention(const Variable& q, const Variable& k,
                        const Variable& v, const Tensor& mask,
                        int64_t num_heads, float dropout_p, bool train,
                        Rng* rng, float penalty) {
  EMX_CHECK_EQ(q.value().ndim(), 3);
  const int64_t hidden = q.dim(2);
  EMX_CHECK_EQ(hidden % num_heads, 0);
  ops::FusedAttentionConfig cfg;
  cfg.num_heads = num_heads;
  cfg.scale = 1.0f / std::sqrt(static_cast<float>(hidden / num_heads));
  cfg.penalty = penalty;
  if (train && dropout_p > 0.0f) {
    EMX_CHECK_LT(dropout_p, 1.0f);
    cfg.dropout = true;
    cfg.dropout_p = dropout_p;
    // One draw per forward keeps the layer Rng stream deterministic; the
    // per-element decisions are pure functions of (seed, flat index).
    cfg.dropout_seed = rng->Next();
  }
  const bool needs_grad =
      GradMode::IsEnabled() &&
      (q.requires_grad() || k.requires_grad() || v.requires_grad());
  Tensor row_max, row_sum;
  Tensor value = ops::FusedAttentionForward(
      q.value(), k.value(), v.value(), mask, cfg,
      needs_grad ? &row_max : nullptr, needs_grad ? &row_sum : nullptr);
  if (!needs_grad) return Variable::Constant(std::move(value));
  return Variable::MakeOpResult(
      std::move(value), {q, k, v},
      [q, k, v, mask, cfg, row_max, row_sum](const Tensor& g) {
        Tensor dq(q.value().shape());
        Tensor dk(k.value().shape());
        Tensor dv(v.value().shape());
        ops::FusedAttentionBackward(g, q.value(), k.value(), v.value(), mask,
                                    cfg, row_max, row_sum, &dq, &dk, &dv);
        AccumulateGrad(q, dq);
        AccumulateGrad(k, dk);
        AccumulateGrad(v, dv);
      },
      "fused_attention");
}

Variable Relu(const Variable& x) {
  Tensor value = ops::Relu(x.value());
  return Variable::MakeOpResult(
      std::move(value), {x},
      [x](const Tensor& g) { AccumulateGrad(x, ops::ReluGrad(g, x.value())); },
      "relu");
}

Variable Gelu(const Variable& x) {
  Tensor value = ops::Gelu(x.value());
  return Variable::MakeOpResult(
      std::move(value), {x},
      [x](const Tensor& g) { AccumulateGrad(x, ops::GeluGrad(g, x.value())); },
      "gelu");
}

Variable Tanh(const Variable& x) {
  Tensor value = ops::Tanh(x.value());
  Tensor saved = value;  // shares storage; value is not mutated afterwards.
  return Variable::MakeOpResult(
      std::move(value), {x},
      [x, saved](const Tensor& g) {
        AccumulateGrad(x, ops::TanhGradFromOutput(g, saved));
      },
      "tanh");
}

Variable Sigmoid(const Variable& x) {
  Tensor value = ops::Sigmoid(x.value());
  Tensor saved = value;
  return Variable::MakeOpResult(
      std::move(value), {x}, [x, saved](const Tensor& g) {
        // dy/dx = y * (1 - y).
        Tensor dx(saved.shape());
        const float* py = saved.data();
        const float* pg = g.data();
        float* pd = dx.data();
        ParallelFor(saved.size(), 1 << 15, [&](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            pd[i] = pg[i] * py[i] * (1.0f - py[i]);
          }
        });
        AccumulateGrad(x, dx);
      },
      "sigmoid");
}

Variable Softmax(const Variable& x) {
  Tensor value = ops::Softmax(x.value());
  Tensor saved = value;
  return Variable::MakeOpResult(
      std::move(value), {x},
      [x, saved](const Tensor& g) {
        AccumulateGrad(x, ops::SoftmaxGradFromOutput(g, saved));
      },
      "softmax");
}

Variable MaskedSoftmax(const Variable& x, const Tensor& mask, float penalty) {
  Tensor masked = ops::MaskedAdd(x.value(), mask, penalty);
  Tensor value = ops::Softmax(masked);
  // A row whose positions are all blocked must attend to nothing (zero
  // context), not degenerate to a uniform distribution — e.g. the
  // permutation-first position of XLNet's query stream. Detect such rows by
  // their masked maximum and zero them; the backward pass is consistent
  // because SoftmaxGradFromOutput yields zero gradient for all-zero rows.
  {
    const int64_t n = value.dim(-1);
    const int64_t rows = value.size() / n;
    const float* pm = masked.data();
    float* pv = value.data();
    const float threshold = penalty * 0.5f;  // well below any real score
    for (int64_t r = 0; r < rows; ++r) {
      float mx = pm[r * n];
      for (int64_t j = 1; j < n; ++j) mx = std::max(mx, pm[r * n + j]);
      if (mx < threshold) {
        for (int64_t j = 0; j < n; ++j) pv[r * n + j] = 0.0f;
      }
    }
  }
  Tensor saved = value;
  return Variable::MakeOpResult(
      std::move(value), {x},
      [x, saved](const Tensor& g) {
        // d(masked)/dx = identity, so the mask needs no backward handling.
        AccumulateGrad(x, ops::SoftmaxGradFromOutput(g, saved));
      },
      "masked_softmax");
}

Variable LogSoftmax(const Variable& x) {
  Tensor value = ops::LogSoftmax(x.value());
  Tensor saved = value;
  return Variable::MakeOpResult(
      std::move(value), {x}, [x, saved](const Tensor& g) {
        // dx = g - softmax(x) * rowsum(g); softmax = exp(log_softmax).
        const int64_t n = saved.dim(-1);
        const int64_t rows = saved.size() / n;
        Tensor dx(saved.shape());
        const float* pg = g.data();
        const float* ps = saved.data();
        float* pd = dx.data();
        const int64_t grain = std::max<int64_t>(1, 16384 / std::max<int64_t>(1, n));
        ParallelFor(rows, grain, [&](int64_t begin, int64_t end) {
          for (int64_t r = begin; r < end; ++r) {
            float gsum = 0.0f;
            for (int64_t j = 0; j < n; ++j) gsum += pg[r * n + j];
            for (int64_t j = 0; j < n; ++j) {
              pd[r * n + j] = pg[r * n + j] - std::exp(ps[r * n + j]) * gsum;
            }
          }
        });
        AccumulateGrad(x, dx);
      },
      "log_softmax");
}

Variable LayerNorm(const Variable& x, const Variable& gamma,
                   const Variable& beta, float eps) {
  Tensor mean, rstd;
  Tensor value =
      ops::LayerNormForward(x.value(), gamma.value(), beta.value(), eps, &mean, &rstd);
  return Variable::MakeOpResult(
      std::move(value), {x, gamma, beta},
      [x, gamma, beta, mean, rstd](const Tensor& g) {
        Tensor dgamma(gamma.value().shape());
        Tensor dbeta(beta.value().shape());
        Tensor dx = ops::LayerNormBackward(g, x.value(), gamma.value(), mean,
                                           rstd, &dgamma, &dbeta);
        AccumulateGrad(x, dx);
        AccumulateGrad(gamma, dgamma);
        AccumulateGrad(beta, dbeta);
      },
      "layernorm");
}

Variable Dropout(const Variable& x, float p, bool train, Rng* rng) {
  if (!train || p <= 0.0f) return x;
  EMX_CHECK_LT(p, 1.0f);
  const float scale = 1.0f / (1.0f - p);
  Tensor mask(x.value().shape());
  float* pm = mask.data();
  for (int64_t i = 0; i < mask.size(); ++i) {
    pm[i] = rng->NextBernoulli(p) ? 0.0f : scale;
  }
  Tensor value = ops::Mul(x.value(), mask);
  return Variable::MakeOpResult(
      std::move(value), {x},
      [x, mask](const Tensor& g) { AccumulateGrad(x, ops::Mul(g, mask)); },
      "dropout");
}

Variable EmbeddingLookup(const Variable& table, const std::vector<int64_t>& ids) {
  Tensor value = ops::GatherRows(table.value(), ids);
  return Variable::MakeOpResult(
      std::move(value), {table},
      [table, ids](const Tensor& g) {
        if (table.requires_grad()) {
          ops::ScatterAddRows(g, ids, &table.node()->EnsureGrad());
        }
      },
      "embedding");
}

Variable SelectTimeStep(const Variable& x, int64_t t) {
  Tensor value = ops::SelectTimeStep(x.value(), t);
  return Variable::MakeOpResult(
      std::move(value), {x},
      [x, t](const Tensor& g) {
        if (x.requires_grad()) {
          ops::AddToTimeStep(g, t, &x.node()->EnsureGrad());
        }
      },
      "select_time_step");
}

Variable Concat(const std::vector<Variable>& parts, int64_t axis) {
  EMX_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  std::vector<int64_t> sizes;
  const int64_t nd = parts[0].value().ndim();
  const int64_t ax = axis < 0 ? axis + nd : axis;
  for (const auto& p : parts) {
    values.push_back(p.value());
    sizes.push_back(p.value().dim(ax));
  }
  Tensor value = ops::Concat(values, ax);
  return Variable::MakeOpResult(
      std::move(value), parts,
      [parts, ax, sizes](const Tensor& g) {
        std::vector<Tensor> grads = ops::SplitAxis(g, ax, sizes);
        for (size_t i = 0; i < parts.size(); ++i) {
          AccumulateGrad(parts[i], grads[i]);
        }
      },
      "concat");
}

Variable MeanAll(const Variable& x) {
  Tensor value = ops::MeanAll(x.value());
  const float inv_n = 1.0f / static_cast<float>(x.size());
  const Shape shape = x.value().shape();
  return Variable::MakeOpResult(
      std::move(value), {x},
      [x, inv_n, shape](const Tensor& g) {
        AccumulateGrad(x, Tensor::Full(shape, g[0] * inv_n));
      },
      "mean_all");
}

Variable SumAll(const Variable& x) {
  Tensor value = ops::SumAll(x.value());
  const Shape shape = x.value().shape();
  return Variable::MakeOpResult(
      std::move(value), {x},
      [x, shape](const Tensor& g) {
        AccumulateGrad(x, Tensor::Full(shape, g[0]));
      },
      "sum_all");
}

Variable CrossEntropy(const Variable& logits, const std::vector<int64_t>& targets,
                      int64_t ignore_index) {
  EMX_CHECK_EQ(logits.value().ndim(), 2);
  const int64_t n = logits.dim(0);
  const int64_t c = logits.dim(1);
  EMX_CHECK_EQ(n, static_cast<int64_t>(targets.size()));

  Tensor log_probs = ops::LogSoftmax(logits.value());
  int64_t active = 0;
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t t = targets[static_cast<size_t>(i)];
    if (t == ignore_index) continue;
    EMX_CHECK(t >= 0 && t < c) << "CrossEntropy: bad target " << t;
    loss -= log_probs[i * c + t];
    ++active;
  }
  const float denom = active > 0 ? static_cast<float>(active) : 1.0f;
  Tensor value = Tensor::Scalar(static_cast<float>(loss) / denom);

  return Variable::MakeOpResult(
      std::move(value), {logits},
      [logits, targets, log_probs, ignore_index, denom, n, c](const Tensor& g) {
        if (!logits.requires_grad()) return;
        // d/dlogits = (softmax - onehot) / active, scaled by upstream g.
        Tensor dx({n, c});
        const float* lp = log_probs.data();
        float* pd = dx.data();
        const float scale = g[0] / denom;
        for (int64_t i = 0; i < n; ++i) {
          const int64_t t = targets[static_cast<size_t>(i)];
          if (t == ignore_index) continue;
          for (int64_t j = 0; j < c; ++j) {
            pd[i * c + j] = std::exp(lp[i * c + j]) * scale;
          }
          pd[i * c + t] -= scale;
        }
        AccumulateGrad(logits, dx);
      },
      "cross_entropy");
}

Variable SoftCrossEntropy(const Variable& logits, const Tensor& soft_targets) {
  EMX_CHECK(logits.value().shape() == soft_targets.shape());
  const int64_t c = logits.dim(-1);
  const int64_t n = logits.size() / c;
  Tensor log_probs = ops::LogSoftmax(logits.value());
  double loss = 0.0;
  const float* lp = log_probs.data();
  const float* st = soft_targets.data();
  for (int64_t i = 0; i < logits.size(); ++i) loss -= st[i] * lp[i];
  Tensor value = Tensor::Scalar(static_cast<float>(loss / n));

  return Variable::MakeOpResult(
      std::move(value), {logits},
      [logits, soft_targets, log_probs, n, c](const Tensor& g) {
        if (!logits.requires_grad()) return;
        // Per row: d/ds = softmax(s) * sum(t) - t, averaged over rows.
        Tensor dx(logits.value().shape());
        const float* lp = log_probs.data();
        const float* st = soft_targets.data();
        float* pd = dx.data();
        const float scale = g[0] / static_cast<float>(n);
        for (int64_t r = 0; r < n; ++r) {
          float tsum = 0.0f;
          for (int64_t j = 0; j < c; ++j) tsum += st[r * c + j];
          for (int64_t j = 0; j < c; ++j) {
            pd[r * c + j] =
                (std::exp(lp[r * c + j]) * tsum - st[r * c + j]) * scale;
          }
        }
        AccumulateGrad(logits, dx);
      },
      "soft_cross_entropy");
}

Variable CosineEmbeddingLoss(const Variable& x, const Tensor& target) {
  EMX_CHECK(x.value().shape() == target.shape());
  EMX_CHECK_EQ(x.value().ndim(), 2);
  const int64_t n = x.dim(0);
  const int64_t h = x.dim(1);
  constexpr float kEps = 1e-8f;

  const float* px = x.value().data();
  const float* pt = target.data();
  std::vector<float> cos(static_cast<size_t>(n));
  std::vector<float> x_norm(static_cast<size_t>(n));
  std::vector<float> t_norm(static_cast<size_t>(n));
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    float dot = 0.0f, nx = 0.0f, nt = 0.0f;
    for (int64_t j = 0; j < h; ++j) {
      const float a = px[i * h + j];
      const float b = pt[i * h + j];
      dot += a * b;
      nx += a * a;
      nt += b * b;
    }
    nx = std::sqrt(nx) + kEps;
    nt = std::sqrt(nt) + kEps;
    const float c = dot / (nx * nt);
    cos[static_cast<size_t>(i)] = c;
    x_norm[static_cast<size_t>(i)] = nx;
    t_norm[static_cast<size_t>(i)] = nt;
    loss += 1.0f - c;
  }
  Tensor value = Tensor::Scalar(static_cast<float>(loss / n));

  Tensor x_saved = x.value();
  return Variable::MakeOpResult(
      std::move(value), {x},
      [x, x_saved, target, cos, x_norm, t_norm, n, h](const Tensor& g) {
        if (!x.requires_grad()) return;
        Tensor dx({n, h});
        const float* px = x_saved.data();
        const float* pt = target.data();
        float* pd = dx.data();
        const float scale = -g[0] / static_cast<float>(n);  // d(1-cos) = -dcos
        for (int64_t i = 0; i < n; ++i) {
          const float nx = x_norm[static_cast<size_t>(i)];
          const float nt = t_norm[static_cast<size_t>(i)];
          const float c = cos[static_cast<size_t>(i)];
          for (int64_t j = 0; j < h; ++j) {
            const float a = px[i * h + j];
            const float b = pt[i * h + j];
            // dcos/da_j = b_j/(|a||b|) - cos * a_j/|a|^2.
            pd[i * h + j] = scale * (b / (nx * nt) - c * a / (nx * nx));
          }
        }
        AccumulateGrad(x, dx);
      },
      "cosine_embedding");
}

Variable StopGradient(const Variable& x) {
  return Variable::Constant(x.value());
}

}  // namespace autograd
}  // namespace emx
