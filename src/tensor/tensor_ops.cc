#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "obs/trace.h"
#include "tensor/kernel_math.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace emx {
namespace ops {
namespace {

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  EMX_CHECK(a.shape() == b.shape())
      << op << " shape mismatch: " << ShapeToString(a.shape()) << " vs "
      << ShapeToString(b.shape());
}

/// Minimum elements per ParallelFor chunk for cheap elementwise loops;
/// below this the dispatch overhead outweighs the work and the range runs
/// inline on the caller.
constexpr int64_t kElemGrain = 1 << 15;

/// Row grain for rowwise kernels (softmax family, LayerNorm): batch enough
/// rows per chunk that each task touches at least ~16K elements.
int64_t RowGrain(int64_t row_width) {
  return std::max<int64_t>(1, 16384 / std::max<int64_t>(1, row_width));
}

template <typename F>
Tensor Elementwise(const Tensor& x, F f) {
  Tensor out(x.shape());
  const float* in = x.data();
  float* o = out.data();
  ParallelFor(x.size(), kElemGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) o[i] = f(in[i]);
  });
  return out;
}

template <typename F>
Tensor Binary(const Tensor& a, const Tensor& b, F f, const char* op) {
  CheckSameShape(a, b, op);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* o = out.data();
  ParallelFor(a.size(), kElemGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) o[i] = f(pa[i], pb[i]);
  });
  return out;
}

constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x + y; }, "Add");
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x - y; }, "Sub");
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x * y; }, "Mul");
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x / y; }, "Div");
}

Tensor AddScalar(const Tensor& a, float s) {
  return Elementwise(a, [s](float x) { return x + s; });
}

Tensor MulScalar(const Tensor& a, float s) {
  return Elementwise(a, [s](float x) { return x * s; });
}

Tensor AddBias(const Tensor& x, const Tensor& bias) {
  EMX_CHECK_EQ(bias.ndim(), 1);
  const int64_t h = bias.dim(0);
  EMX_CHECK_EQ(x.dim(-1), h) << "AddBias: last dim mismatch";
  Tensor out(x.shape());
  const float* in = x.data();
  const float* b = bias.data();
  float* o = out.data();
  const int64_t rows = x.size() / h;
  ParallelFor(rows, RowGrain(h), [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const float* src = in + r * h;
      float* dst = o + r * h;
      for (int64_t j = 0; j < h; ++j) dst[j] = src[j] + b[j];
    }
  });
  return out;
}

Tensor SumToBias(const Tensor& grad, int64_t h) {
  EMX_CHECK_EQ(grad.dim(-1), h);
  Tensor out({h});
  const float* g = grad.data();
  float* o = out.data();
  const int64_t rows = grad.size() / h;
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = g + r * h;
    for (int64_t j = 0; j < h; ++j) o[j] += src[j];
  }
  return out;
}

Tensor Exp(const Tensor& x) {
  return Elementwise(x, [](float v) { return std::exp(v); });
}

Tensor Log(const Tensor& x) {
  return Elementwise(x, [](float v) { return std::log(v); });
}

Tensor Sqrt(const Tensor& x) {
  return Elementwise(x, [](float v) { return std::sqrt(v); });
}

Tensor Tanh(const Tensor& x) {
  return Elementwise(x, [](float v) { return std::tanh(v); });
}

Tensor Sigmoid(const Tensor& x) {
  return Elementwise(x, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

Tensor Relu(const Tensor& x) {
  return Elementwise(x, [](float v) { return v > 0.0f ? v : 0.0f; });
}

Tensor ReluGrad(const Tensor& dy, const Tensor& x) {
  return Binary(dy, x, [](float g, float v) { return v > 0.0f ? g : 0.0f; },
                "ReluGrad");
}

Tensor Gelu(const Tensor& x) {
  return Elementwise(x, [](float v) {
    return 0.5f * v * (1.0f + std::tanh(kGeluC * (v + 0.044715f * v * v * v)));
  });
}

Tensor GeluGrad(const Tensor& dy, const Tensor& x) {
  return Binary(dy, x,
                [](float g, float v) {
                  const float v3 = v * v * v;
                  const float inner = kGeluC * (v + 0.044715f * v3);
                  const float t = std::tanh(inner);
                  const float dinner = kGeluC * (1.0f + 3.0f * 0.044715f * v * v);
                  const float d = 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * dinner;
                  return g * d;
                },
                "GeluGrad");
}

Tensor TanhGradFromOutput(const Tensor& dy, const Tensor& y) {
  return Binary(dy, y, [](float g, float t) { return g * (1.0f - t * t); },
                "TanhGrad");
}

namespace {

// ---- Blocked GEMM ----------------------------------------------------
//
// GotoBLAS/llama.cpp-style MC/KC/NC cache tiling with an MR x NR register
// micro-kernel. Operand blocks are packed into contiguous per-thread
// scratch before the inner loops, so one code path serves all four
// trans_a/trans_b combinations: transposition is absorbed entirely by the
// packing strides. The micro-kernel loads the C tile, accumulates k in
// ascending order, and stores the tile back once per KC block; every
// output element therefore sees the exact addition sequence of the naive
// ascending-k loop, making results bit-identical to MatMulNaive at any
// thread count.
constexpr int64_t kMC = 64;   // A block rows per task
constexpr int64_t kKC = 256;  // packed panel depth
constexpr int64_t kNC = 128;  // packed B panel width
constexpr int64_t kMR = 4;    // register tile rows
constexpr int64_t kNR = 16;   // register tile cols

/// Logical dims and element strides of C = op(A) * op(B) for one matrix.
/// A(i,kk) = pa[i * a_rs + kk * a_cs]; B(kk,j) = pb[kk * b_rs + j * b_cs].
struct GemmShape {
  int64_t m, n, k;
  int64_t a_rs, a_cs, b_rs, b_cs;
};

// MulAdd (kernel_math.h) pins one rounding behaviour for every GEMM
// accumulation; the fused attention kernel shares it so its score and
// context chains stay bit-identical to this GEMM's.

/// Copies a rows x cols logical block (strided source) into row-major dst.
void PackPanel(const float* src, int64_t row_stride, int64_t col_stride,
               int64_t rows, int64_t cols, float* dst) {
  if (col_stride == 1) {
    for (int64_t r = 0; r < rows; ++r) {
      const float* s = src + r * row_stride;
      std::copy(s, s + cols, dst + r * cols);
    }
  } else {
    for (int64_t r = 0; r < rows; ++r) {
      const float* s = src + r * row_stride;
      float* d = dst + r * cols;
      for (int64_t c = 0; c < cols; ++c) d[c] = s[c * col_stride];
    }
  }
}

/// Full MR x NR register tile: C += Ap[0:MR, 0:kc] * Bp[0:kc, 0:NR].
void MicroKernel(int64_t kc, const float* __restrict__ ap, int64_t lda,
                 const float* __restrict__ bp, int64_t ldb,
                 float* __restrict__ c, int64_t ldc) {
  // One named accumulator array per tile row (kMR unrolled by hand): GCC
  // vectorizes each j-loop into NR-wide FMAs and keeps the whole tile in
  // registers, where the acc[kMR][kNR] formulation degenerates into
  // shuffle-heavy scalar code. Per output element the accumulation is still
  // a single ascending-k MulAdd chain, so results stay bit-identical to
  // MicroKernelEdge and MatMulNaive.
  static_assert(kMR == 4, "accumulator rows below are unrolled for kMR == 4");
  float a0[kNR], a1[kNR], a2[kNR], a3[kNR];
  for (int64_t j = 0; j < kNR; ++j) {
    a0[j] = c[0 * ldc + j];
    a1[j] = c[1 * ldc + j];
    a2[j] = c[2 * ldc + j];
    a3[j] = c[3 * ldc + j];
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* __restrict__ b_row = bp + kk * ldb;
    const float v0 = ap[0 * lda + kk];
    const float v1 = ap[1 * lda + kk];
    const float v2 = ap[2 * lda + kk];
    const float v3 = ap[3 * lda + kk];
    for (int64_t j = 0; j < kNR; ++j) {
      a0[j] = MulAdd(v0, b_row[j], a0[j]);
      a1[j] = MulAdd(v1, b_row[j], a1[j]);
      a2[j] = MulAdd(v2, b_row[j], a2[j]);
      a3[j] = MulAdd(v3, b_row[j], a3[j]);
    }
  }
  for (int64_t j = 0; j < kNR; ++j) {
    c[0 * ldc + j] = a0[j];
    c[1 * ldc + j] = a1[j];
    c[2 * ldc + j] = a2[j];
    c[3 * ldc + j] = a3[j];
  }
}

/// Partial tile at the block edges; same ascending-k accumulation order.
void MicroKernelEdge(int64_t mr, int64_t nr, int64_t kc,
                     const float* __restrict__ ap, int64_t lda,
                     const float* __restrict__ bp, int64_t ldb,
                     float* __restrict__ c, int64_t ldc) {
  for (int64_t i = 0; i < mr; ++i) {
    for (int64_t j = 0; j < nr; ++j) {
      float acc = c[i * ldc + j];
      for (int64_t kk = 0; kk < kc; ++kk) {
        acc = MulAdd(ap[i * lda + kk], bp[kk * ldb + j], acc);
      }
      c[i * ldc + j] = acc;
    }
  }
}

/// Computes output rows [i_begin, i_end) of one C = op(A) * op(B).
/// abuf/bbuf are caller-provided scratch of kMC*kKC and kKC*kNC floats.
void GemmRowRange(const GemmShape& d, const float* pa, const float* pb,
                  float* pc, int64_t i_begin, int64_t i_end, float* abuf,
                  float* bbuf) {
  for (int64_t jc = 0; jc < d.n; jc += kNC) {
    const int64_t ncb = std::min(kNC, d.n - jc);
    for (int64_t p = 0; p < d.k; p += kKC) {
      const int64_t kcb = std::min(kKC, d.k - p);
      PackPanel(pb + p * d.b_rs + jc * d.b_cs, d.b_rs, d.b_cs, kcb, ncb, bbuf);
      for (int64_t ic = i_begin; ic < i_end; ic += kMC) {
        const int64_t mcb = std::min(kMC, i_end - ic);
        PackPanel(pa + ic * d.a_rs + p * d.a_cs, d.a_rs, d.a_cs, mcb, kcb,
                  abuf);
        for (int64_t ir = 0; ir < mcb; ir += kMR) {
          const int64_t mr = std::min(kMR, mcb - ir);
          float* c_tile_row = pc + (ic + ir) * d.n + jc;
          for (int64_t jr = 0; jr < ncb; jr += kNR) {
            const int64_t nr = std::min(kNR, ncb - jr);
            if (mr == kMR && nr == kNR) {
              MicroKernel(kcb, abuf + ir * kcb, kcb, bbuf + jr, ncb,
                          c_tile_row + jr, d.n);
            } else {
              MicroKernelEdge(mr, nr, kcb, abuf + ir * kcb, kcb, bbuf + jr,
                              ncb, c_tile_row + jr, d.n);
            }
          }
        }
      }
    }
  }
}

/// Resolves shapes/batching shared by MatMul and MatMulNaive. Returns the
/// zero-initialized output; the strides in *dims absorb the trans flags.
Tensor PrepareMatMul(const Tensor& a, const Tensor& b, bool trans_a,
                     bool trans_b, GemmShape* dims, int64_t* batch,
                     bool* a_broadcast, bool* b_broadcast) {
  EMX_CHECK_GE(a.ndim(), 2);
  EMX_CHECK_GE(b.ndim(), 2);
  const int64_t a_rows = a.dim(-2), a_cols = a.dim(-1);
  const int64_t b_rows = b.dim(-2), b_cols = b.dim(-1);
  dims->m = trans_a ? a_cols : a_rows;
  dims->k = trans_a ? a_rows : a_cols;
  const int64_t kb = trans_b ? b_cols : b_rows;
  dims->n = trans_b ? b_rows : b_cols;
  EMX_CHECK_EQ(dims->k, kb) << "MatMul inner dim mismatch: "
                            << ShapeToString(a.shape()) << (trans_a ? "^T" : "")
                            << " x " << ShapeToString(b.shape())
                            << (trans_b ? "^T" : "");
  dims->a_rs = trans_a ? 1 : a_cols;
  dims->a_cs = trans_a ? a_cols : 1;
  dims->b_rs = trans_b ? 1 : b_cols;
  dims->b_cs = trans_b ? b_cols : 1;

  // Batch handling: equal leading dims, or rank-2 broadcast.
  Shape a_batch(a.shape().begin(), a.shape().end() - 2);
  Shape b_batch(b.shape().begin(), b.shape().end() - 2);
  Shape out_batch;
  if (a_batch == b_batch) {
    out_batch = a_batch;
  } else if (b_batch.empty()) {
    out_batch = a_batch;
  } else if (a_batch.empty()) {
    out_batch = b_batch;
  } else {
    EMX_CHECK(false) << "MatMul batch mismatch: " << ShapeToString(a.shape())
                     << " x " << ShapeToString(b.shape());
  }
  *batch = NumElements(out_batch);
  *a_broadcast = a_batch.empty() && !out_batch.empty();
  *b_broadcast = b_batch.empty() && !out_batch.empty();

  Shape out_shape = out_batch;
  out_shape.push_back(dims->m);
  out_shape.push_back(dims->n);
  return Tensor(out_shape);
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  GemmShape dims;
  int64_t batch;
  bool a_broadcast, b_broadcast;
  Tensor out = PrepareMatMul(a, b, trans_a, trans_b, &dims, &batch,
                             &a_broadcast, &b_broadcast);
  EMX_TRACE_SPAN("kernel.matmul", [&] {
    return obs::KeyValues(
        {{"m", dims.m}, {"n", dims.n}, {"k", dims.k}, {"batch", batch}});
  });
  const int64_t a_stride = a.dim(-2) * a.dim(-1);
  const int64_t b_stride = b.dim(-2) * b.dim(-1);
  const int64_t c_stride = dims.m * dims.n;
  const float* pa0 = a.data();
  const float* pb0 = b.data();
  float* pc0 = out.data();

  // One work item = one kMC row block of one batch matrix. Chunks are
  // contiguous item ranges, so a worker sweeps whole row blocks and packs
  // its own B panels into private scratch.
  const int64_t blocks_per_mat = (dims.m + kMC - 1) / kMC;
  const int64_t total_items = batch * blocks_per_mat;
  const int64_t item_flops = std::max<int64_t>(
      1, 2 * std::min(kMC, dims.m) * dims.k * dims.n);
  const int64_t grain = std::max<int64_t>(1, (1 << 18) / item_flops);

  ParallelFor(total_items, grain, [&](int64_t begin, int64_t end) {
    std::vector<float> abuf(kMC * kKC);
    std::vector<float> bbuf(kKC * kNC);
    for (int64_t item = begin; item < end; ++item) {
      const int64_t bi = item / blocks_per_mat;
      const int64_t blk = item % blocks_per_mat;
      const int64_t i0 = blk * kMC;
      const int64_t i1 = std::min(i0 + kMC, dims.m);
      const float* pa = pa0 + (a_broadcast ? 0 : bi * a_stride);
      const float* pb = pb0 + (b_broadcast ? 0 : bi * b_stride);
      float* pc = pc0 + bi * c_stride;
      GemmRowRange(dims, pa, pb, pc, i0, i1, abuf.data(), bbuf.data());
    }
  });
  return out;
}

Tensor MatMulNaive(const Tensor& a, const Tensor& b, bool trans_a,
                   bool trans_b) {
  GemmShape dims;
  int64_t batch;
  bool a_broadcast, b_broadcast;
  Tensor out = PrepareMatMul(a, b, trans_a, trans_b, &dims, &batch,
                             &a_broadcast, &b_broadcast);
  const int64_t a_stride = a.dim(-2) * a.dim(-1);
  const int64_t b_stride = b.dim(-2) * b.dim(-1);
  const float* pa0 = a.data();
  const float* pb0 = b.data();
  float* pc0 = out.data();
  for (int64_t bi = 0; bi < batch; ++bi) {
    const float* pa = pa0 + (a_broadcast ? 0 : bi * a_stride);
    const float* pb = pb0 + (b_broadcast ? 0 : bi * b_stride);
    float* pc = pc0 + bi * dims.m * dims.n;
    for (int64_t i = 0; i < dims.m; ++i) {
      float* c_row = pc + i * dims.n;
      for (int64_t j = 0; j < dims.n; ++j) {
        float acc = c_row[j];
        for (int64_t kk = 0; kk < dims.k; ++kk) {
          acc = MulAdd(pa[i * dims.a_rs + kk * dims.a_cs],
                       pb[kk * dims.b_rs + j * dims.b_cs], acc);
        }
        c_row[j] = acc;
      }
    }
  }
  return out;
}

Tensor Permute(const Tensor& x, const std::vector<int64_t>& perm) {
  const int64_t nd = x.ndim();
  EMX_CHECK_EQ(static_cast<int64_t>(perm.size()), nd);
  std::vector<int64_t> seen(nd, 0);
  for (int64_t p : perm) {
    EMX_CHECK(p >= 0 && p < nd) << "bad permutation";
    seen[p]++;
  }
  for (int64_t s : seen) EMX_CHECK_EQ(s, 1) << "perm is not a permutation";

  Shape out_shape(nd);
  for (int64_t i = 0; i < nd; ++i) out_shape[i] = x.dim(perm[i]);
  Tensor out(out_shape);

  // Input strides.
  std::vector<int64_t> in_strides(nd, 1);
  for (int64_t i = nd - 2; i >= 0; --i) {
    in_strides[i] = in_strides[i + 1] * x.dim(i + 1);
  }
  // For each output element, the input stride per output axis.
  std::vector<int64_t> gather_strides(nd);
  for (int64_t i = 0; i < nd; ++i) gather_strides[i] = in_strides[perm[i]];

  const float* in = x.data();
  float* o = out.data();
  const int64_t n = x.size();
  std::vector<int64_t> idx(nd, 0);
  int64_t src = 0;
  for (int64_t flat = 0; flat < n; ++flat) {
    o[flat] = in[src];
    // Increment the mixed-radix counter and the running source offset.
    for (int64_t d = nd - 1; d >= 0; --d) {
      idx[d]++;
      src += gather_strides[d];
      if (idx[d] < out_shape[d]) break;
      src -= idx[d] * gather_strides[d];
      idx[d] = 0;
    }
  }
  return out;
}

Tensor TransposeLast2(const Tensor& x) {
  const int64_t nd = x.ndim();
  EMX_CHECK_GE(nd, 2);
  std::vector<int64_t> perm(nd);
  for (int64_t i = 0; i < nd; ++i) perm[i] = i;
  std::swap(perm[nd - 1], perm[nd - 2]);
  return Permute(x, perm);
}

Tensor SumAll(const Tensor& x) {
  double acc = 0.0;
  const float* p = x.data();
  for (int64_t i = 0; i < x.size(); ++i) acc += p[i];
  return Tensor::Scalar(static_cast<float>(acc));
}

Tensor MeanAll(const Tensor& x) {
  EMX_CHECK_GT(x.size(), 0);
  Tensor s = SumAll(x);
  s[0] /= static_cast<float>(x.size());
  return s;
}

Tensor SumLastAxis(const Tensor& x) {
  const int64_t n = x.dim(-1);
  Shape out_shape(x.shape().begin(), x.shape().end() - 1);
  if (out_shape.empty()) out_shape.push_back(1);
  Tensor out(out_shape);
  const float* p = x.data();
  float* o = out.data();
  const int64_t rows = x.size() / n;
  for (int64_t r = 0; r < rows; ++r) {
    float acc = 0.0f;
    const float* src = p + r * n;
    for (int64_t j = 0; j < n; ++j) acc += src[j];
    o[r] = acc;
  }
  return out;
}

std::vector<int64_t> ArgMaxLastAxis(const Tensor& x) {
  const int64_t n = x.dim(-1);
  const int64_t rows = x.size() / n;
  std::vector<int64_t> result(rows);
  const float* p = x.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = p + r * n;
    int64_t best = 0;
    for (int64_t j = 1; j < n; ++j) {
      if (src[j] > src[best]) best = j;
    }
    result[static_cast<size_t>(r)] = best;
  }
  return result;
}

Tensor Softmax(const Tensor& x) {
  const int64_t n = x.dim(-1);
  EMX_TRACE_SPAN("kernel.softmax", [&] {
    return obs::KeyValues({{"rows", x.size() / n}, {"cols", n}});
  });
  Tensor out(x.shape());
  const float* p = x.data();
  float* o = out.data();
  const int64_t rows = x.size() / n;
  ParallelFor(rows, RowGrain(n), [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const float* src = p + r * n;
      float* dst = o + r * n;
      float mx = src[0];
      for (int64_t j = 1; j < n; ++j) mx = std::max(mx, src[j]);
      float denom = 0.0f;
      for (int64_t j = 0; j < n; ++j) {
        dst[j] = std::exp(src[j] - mx);
        denom += dst[j];
      }
      const float inv = 1.0f / denom;
      for (int64_t j = 0; j < n; ++j) dst[j] *= inv;
    }
  });
  return out;
}

Tensor SoftmaxGradFromOutput(const Tensor& dy, const Tensor& y) {
  CheckSameShape(dy, y, "SoftmaxGrad");
  const int64_t n = y.dim(-1);
  Tensor dx(y.shape());
  const float* pdy = dy.data();
  const float* py = y.data();
  float* pdx = dx.data();
  const int64_t rows = y.size() / n;
  ParallelFor(rows, RowGrain(n), [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const float* gy = pdy + r * n;
      const float* yy = py + r * n;
      float* gx = pdx + r * n;
      float dot = 0.0f;
      for (int64_t j = 0; j < n; ++j) dot += gy[j] * yy[j];
      for (int64_t j = 0; j < n; ++j) gx[j] = yy[j] * (gy[j] - dot);
    }
  });
  return dx;
}

Tensor LogSoftmax(const Tensor& x) {
  const int64_t n = x.dim(-1);
  Tensor out(x.shape());
  const float* p = x.data();
  float* o = out.data();
  const int64_t rows = x.size() / n;
  ParallelFor(rows, RowGrain(n), [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const float* src = p + r * n;
      float* dst = o + r * n;
      float mx = src[0];
      for (int64_t j = 1; j < n; ++j) mx = std::max(mx, src[j]);
      float denom = 0.0f;
      for (int64_t j = 0; j < n; ++j) denom += std::exp(src[j] - mx);
      const float log_denom = std::log(denom) + mx;
      for (int64_t j = 0; j < n; ++j) dst[j] = src[j] - log_denom;
    }
  });
  return out;
}

Tensor MaskedAdd(const Tensor& x, const Tensor& mask, float value) {
  Tensor out = x.Clone();
  float* o = out.data();
  const float* m = mask.data();
  if (x.shape() == mask.shape()) {
    for (int64_t i = 0; i < x.size(); ++i) {
      if (m[i] != 0.0f) o[i] += value;
    }
    return out;
  }
  // Broadcast: x is [B, ..., S]; mask is [B, 1, ..., S] or [B, 1, T, S].
  EMX_CHECK_EQ(x.ndim(), mask.ndim())
      << "MaskedAdd: rank mismatch " << ShapeToString(x.shape()) << " vs "
      << ShapeToString(mask.shape());
  const int64_t nd = x.ndim();
  std::vector<int64_t> x_strides(nd, 1), m_strides(nd, 1);
  for (int64_t i = nd - 2; i >= 0; --i) {
    x_strides[i] = x_strides[i + 1] * x.dim(i + 1);
    m_strides[i] = m_strides[i + 1] * mask.dim(i + 1);
  }
  for (int64_t i = 0; i < nd; ++i) {
    EMX_CHECK(mask.dim(i) == x.dim(i) || mask.dim(i) == 1)
        << "MaskedAdd: dim " << i << " not broadcastable";
  }
  std::vector<int64_t> idx(nd, 0);
  for (int64_t flat = 0; flat < x.size(); ++flat) {
    int64_t moff = 0;
    for (int64_t d = 0; d < nd; ++d) {
      moff += (mask.dim(d) == 1 ? 0 : idx[d]) * m_strides[d];
    }
    if (m[moff] != 0.0f) o[flat] += value;
    for (int64_t d = nd - 1; d >= 0; --d) {
      if (++idx[d] < x.dim(d)) break;
      idx[d] = 0;
    }
  }
  return out;
}

Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& ids) {
  EMX_CHECK_EQ(table.ndim(), 2);
  const int64_t v = table.dim(0);
  const int64_t h = table.dim(1);
  Tensor out({static_cast<int64_t>(ids.size()), h});
  const float* t = table.data();
  float* o = out.data();
  for (size_t i = 0; i < ids.size(); ++i) {
    const int64_t id = ids[i];
    EMX_CHECK(id >= 0 && id < v) << "GatherRows: id " << id << " out of range "
                                 << v;
    std::copy(t + id * h, t + (id + 1) * h, o + static_cast<int64_t>(i) * h);
  }
  return out;
}

void ScatterAddRows(const Tensor& grad, const std::vector<int64_t>& ids,
                    Tensor* table_grad) {
  EMX_CHECK_EQ(grad.ndim(), 2);
  EMX_CHECK_EQ(table_grad->ndim(), 2);
  const int64_t h = table_grad->dim(1);
  EMX_CHECK_EQ(grad.dim(1), h);
  EMX_CHECK_EQ(grad.dim(0), static_cast<int64_t>(ids.size()));
  const float* g = grad.data();
  float* t = table_grad->data();
  for (size_t i = 0; i < ids.size(); ++i) {
    const int64_t id = ids[i];
    float* dst = t + id * h;
    const float* src = g + static_cast<int64_t>(i) * h;
    for (int64_t j = 0; j < h; ++j) dst[j] += src[j];
  }
}

Tensor SelectTimeStep(const Tensor& x, int64_t t) {
  EMX_CHECK_EQ(x.ndim(), 3);
  const int64_t b = x.dim(0), seq = x.dim(1), h = x.dim(2);
  EMX_CHECK(t >= 0 && t < seq);
  Tensor out({b, h});
  const float* p = x.data();
  float* o = out.data();
  for (int64_t i = 0; i < b; ++i) {
    std::copy(p + (i * seq + t) * h, p + (i * seq + t + 1) * h, o + i * h);
  }
  return out;
}

void AddToTimeStep(const Tensor& grad_bh, int64_t t, Tensor* grad_bth) {
  EMX_CHECK_EQ(grad_bh.ndim(), 2);
  EMX_CHECK_EQ(grad_bth->ndim(), 3);
  const int64_t b = grad_bth->dim(0), seq = grad_bth->dim(1), h = grad_bth->dim(2);
  EMX_CHECK(t >= 0 && t < seq);
  const float* g = grad_bh.data();
  float* o = grad_bth->data();
  for (int64_t i = 0; i < b; ++i) {
    float* dst = o + (i * seq + t) * h;
    const float* src = g + i * h;
    for (int64_t j = 0; j < h; ++j) dst[j] += src[j];
  }
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  EMX_CHECK(!parts.empty());
  const int64_t nd = parts[0].ndim();
  if (axis < 0) axis += nd;
  EMX_CHECK(axis >= 0 && axis < nd);
  int64_t concat_dim = 0;
  for (const auto& p : parts) {
    EMX_CHECK_EQ(p.ndim(), nd);
    for (int64_t d = 0; d < nd; ++d) {
      if (d != axis) EMX_CHECK_EQ(p.dim(d), parts[0].dim(d));
    }
    concat_dim += p.dim(axis);
  }
  Shape out_shape = parts[0].shape();
  out_shape[static_cast<size_t>(axis)] = concat_dim;
  Tensor out(out_shape);

  // outer = product of dims before axis; inner = product after axis.
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= parts[0].dim(d);
  for (int64_t d = axis + 1; d < nd; ++d) inner *= parts[0].dim(d);

  float* o = out.data();
  const int64_t out_row = concat_dim * inner;
  int64_t offset = 0;
  for (const auto& p : parts) {
    const int64_t rows = p.dim(axis) * inner;
    const float* src = p.data();
    for (int64_t r = 0; r < outer; ++r) {
      std::copy(src + r * rows, src + (r + 1) * rows, o + r * out_row + offset);
    }
    offset += rows;
  }
  return out;
}

std::vector<Tensor> SplitAxis(const Tensor& x, int64_t axis,
                              const std::vector<int64_t>& sizes) {
  const int64_t nd = x.ndim();
  if (axis < 0) axis += nd;
  EMX_CHECK(axis >= 0 && axis < nd);
  int64_t total = 0;
  for (int64_t s : sizes) total += s;
  EMX_CHECK_EQ(total, x.dim(axis));

  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= x.dim(d);
  for (int64_t d = axis + 1; d < nd; ++d) inner *= x.dim(d);

  std::vector<Tensor> parts;
  parts.reserve(sizes.size());
  const float* src = x.data();
  const int64_t in_row = x.dim(axis) * inner;
  int64_t offset = 0;
  for (int64_t s : sizes) {
    Shape shape = x.shape();
    shape[static_cast<size_t>(axis)] = s;
    Tensor part(shape);
    float* dst = part.data();
    const int64_t rows = s * inner;
    for (int64_t r = 0; r < outer; ++r) {
      std::copy(src + r * in_row + offset, src + r * in_row + offset + rows,
                dst + r * rows);
    }
    offset += rows;
    parts.push_back(std::move(part));
  }
  return parts;
}

Tensor LayerNormForward(const Tensor& x, const Tensor& gamma,
                        const Tensor& beta, float eps, Tensor* mean,
                        Tensor* rstd) {
  const int64_t h = x.dim(-1);
  EMX_CHECK_EQ(gamma.size(), h);
  EMX_CHECK_EQ(beta.size(), h);
  const int64_t rows = x.size() / h;
  EMX_TRACE_SPAN("kernel.layernorm", [&] {
    return obs::KeyValues({{"rows", rows}, {"hidden", h}});
  });
  Tensor out(x.shape());
  *mean = Tensor({rows});
  *rstd = Tensor({rows});
  const float* p = x.data();
  const float* g = gamma.data();
  const float* b = beta.data();
  float* o = out.data();
  float* pm = mean->data();
  float* pr = rstd->data();
  ParallelFor(rows, RowGrain(h), [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const float* src = p + r * h;
      float* dst = o + r * h;
      float mu = 0.0f;
      for (int64_t j = 0; j < h; ++j) mu += src[j];
      mu /= static_cast<float>(h);
      float var = 0.0f;
      for (int64_t j = 0; j < h; ++j) {
        const float d = src[j] - mu;
        var += d * d;
      }
      var /= static_cast<float>(h);
      const float r_std = 1.0f / std::sqrt(var + eps);
      pm[r] = mu;
      pr[r] = r_std;
      for (int64_t j = 0; j < h; ++j) {
        dst[j] = (src[j] - mu) * r_std * g[j] + b[j];
      }
    }
  });
  return out;
}

Tensor LayerNormBackward(const Tensor& dy, const Tensor& x,
                         const Tensor& gamma, const Tensor& mean,
                         const Tensor& rstd, Tensor* dgamma, Tensor* dbeta) {
  const int64_t h = x.dim(-1);
  const int64_t rows = x.size() / h;
  Tensor dx(x.shape());
  const float* pdy = dy.data();
  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pm = mean.data();
  const float* pr = rstd.data();
  float* pdx = dx.data();
  float* pdg = dgamma->data();
  float* pdb = dbeta->data();
  // Rows are independent for dx, but dgamma/dbeta reduce across rows: each
  // chunk accumulates private partials and merges them under a mutex.
  std::mutex merge_mu;
  ParallelFor(rows, RowGrain(h), [&](int64_t begin, int64_t end) {
    std::vector<float> local_dg(h, 0.0f);
    std::vector<float> local_db(h, 0.0f);
    for (int64_t r = begin; r < end; ++r) {
      const float* gy = pdy + r * h;
      const float* xx = px + r * h;
      float* gx = pdx + r * h;
      const float mu = pm[r];
      const float rs = pr[r];
      // xhat_j = (x_j - mu) * rs; dxhat_j = gy_j * gamma_j.
      float sum_dxhat = 0.0f;
      float sum_dxhat_xhat = 0.0f;
      for (int64_t j = 0; j < h; ++j) {
        const float xhat = (xx[j] - mu) * rs;
        const float dxhat = gy[j] * pg[j];
        sum_dxhat += dxhat;
        sum_dxhat_xhat += dxhat * xhat;
        local_dg[j] += gy[j] * xhat;
        local_db[j] += gy[j];
      }
      const float inv_h = 1.0f / static_cast<float>(h);
      for (int64_t j = 0; j < h; ++j) {
        const float xhat = (xx[j] - mu) * rs;
        const float dxhat = gy[j] * pg[j];
        gx[j] = rs * (dxhat - inv_h * sum_dxhat - xhat * inv_h * sum_dxhat_xhat);
      }
    }
    std::lock_guard<std::mutex> lock(merge_mu);
    for (int64_t j = 0; j < h; ++j) {
      pdg[j] += local_dg[j];
      pdb[j] += local_db[j];
    }
  });
  return dx;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  EMX_CHECK_EQ(a.size(), b.size());
  float mx = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    mx = std::max(mx, std::abs(pa[i] - pb[i]));
  }
  return mx;
}

bool AllClose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::abs(pa[i] - pb[i]) > atol + rtol * std::abs(pb[i])) return false;
  }
  return true;
}

}  // namespace ops
}  // namespace emx
