#ifndef EMX_TENSOR_FUSED_ATTENTION_H_
#define EMX_TENSOR_FUSED_ATTENTION_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace emx {
namespace ops {

/// Configuration shared by the fused attention forward and backward
/// kernels. `q`/`k`/`v` are the outputs of the input projections in their
/// natural [B, T, H] layout with heads interleaved in the last dimension
/// (H = num_heads * head_dim); the kernel addresses head h at column offset
/// h * head_dim, so the Permute copies of the unfused path never happen.
struct FusedAttentionConfig {
  int64_t num_heads = 1;
  /// Score scale, typically 1/sqrt(head_dim).
  float scale = 1.0f;
  /// Additive penalty for blocked positions (reference: MaskedSoftmax).
  float penalty = -1e9f;
  /// Inverted-dropout on the attention probabilities. When `dropout` is
  /// set, element (b, h, i, j) of the prob tensor is dropped iff the
  /// counter-based hash of (dropout_seed, flat index) lands below
  /// dropout_p; survivors scale by 1/(1-p). The mask is a pure function of
  /// (seed, index) — order-free, thread-count-free and recomputable — so
  /// neither forward nor backward ever stores it.
  bool dropout = false;
  float dropout_p = 0.0f;
  uint64_t dropout_seed = 0;
};

/// The (recomputable) dropout decision for flat prob index `idx`: 0 when
/// dropped, 1/(1-p) when kept. Exposed so tests can pin semantics.
float FusedDropoutScale(uint64_t seed, int64_t idx, float dropout_p);

/// Tiled attention forward with an online row max and per-thread scratch:
///
///   out[b, i, h*dh + d] = sum_j softmax_j(scale * q_bhi . k_bhj + mask)
///                               * dropout * v[b, j, h*dh + d]
///
/// q: [B, Tq, H]; k, v: [B, Tk, H]; mask empty, [B, 1, 1, Tk],
/// [B, 1, Tq, Tk] or [B, num_heads, Tq, Tk] (nonzero = blocked, as in
/// MaskedSoftmax). Returns [B, Tq, H].
///
/// The kernel parallelizes over B x heads x row tiles, streams K/V tiles
/// through thread-local scratch and never materializes the [B, h, Tq, Tk]
/// score or prob tensors. Accumulation per output element is a single
/// ascending-index MulAdd chain (kernel_math.h), and softmax uses the same
/// global-row-max formulation as ops::Softmax, so outputs are bit-identical
/// to the unfused MatMul -> MulScalar -> MaskedSoftmax -> MatMul chain at
/// any thread count. Rows whose positions are all blocked produce zeros
/// (matching autograd::MaskedSoftmax), never NaNs.
///
/// When `row_max`/`row_sum` are non-null they receive the per-row softmax
/// statistics m_i (masked row max) and l_i (sum of exp(s - m_i)), each
/// shaped [B, num_heads, Tq]; the backward pass recomputes per-tile probs
/// from them, bit-identical to the forward probs.
Tensor FusedAttentionForward(const Tensor& q, const Tensor& k,
                             const Tensor& v, const Tensor& mask,
                             const FusedAttentionConfig& cfg, Tensor* row_max,
                             Tensor* row_sum);

/// Backward of FusedAttentionForward: given upstream dout [B, Tq, H] and
/// the saved row statistics, recomputes the score rows tile by tile
/// (never materializing [B, h, Tq, Tk]) and writes dq/dk/dv (pre-allocated
/// zero tensors shaped like q/k/v). Parallel over B x heads; each task owns
/// its (b, h) slice of all three gradients, so no atomics are needed and
/// results are deterministic at any thread count.
void FusedAttentionBackward(const Tensor& dout, const Tensor& q,
                            const Tensor& k, const Tensor& v,
                            const Tensor& mask,
                            const FusedAttentionConfig& cfg,
                            const Tensor& row_max, const Tensor& row_sum,
                            Tensor* dq, Tensor* dk, Tensor* dv);

}  // namespace ops
}  // namespace emx

#endif  // EMX_TENSOR_FUSED_ATTENTION_H_
