#ifndef EMX_TENSOR_KERNEL_MATH_H_
#define EMX_TENSOR_KERNEL_MATH_H_

#include <cmath>

namespace emx {
namespace ops {

/// One rounding behaviour for every accumulation kernel. The default
/// -ffp-contract=fast lets the compiler contract a*b+c into FMA in some
/// loop shapes and split it into mul-then-add in others, which would break
/// the bitwise guarantees between the blocked GEMM, the naive reference and
/// the fused attention kernel; an explicit fused (or explicitly unfused)
/// multiply-add pins the rounding down once for all of them.
inline float MulAdd(float a, float b, float c) {
#if defined(__FMA__) || defined(__ARM_FEATURE_FMA)
  return std::fma(a, b, c);
#else
  return c + a * b;
#endif
}

}  // namespace ops
}  // namespace emx

#endif  // EMX_TENSOR_KERNEL_MATH_H_
