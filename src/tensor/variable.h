#ifndef EMX_TENSOR_VARIABLE_H_
#define EMX_TENSOR_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace emx {

namespace internal {
struct VarNode;
}  // namespace internal

/// Thread-local switch for autograd tape construction. While disabled,
/// Variable::MakeOpResult returns plain constants: no parents are retained,
/// no backward closure is recorded, and activation tensors die as soon as
/// the forward expression releases them. The forward *values* are computed
/// by exactly the same kernels either way, so inference-mode outputs are
/// bit-identical to training-mode outputs.
///
/// The flag is per-thread: a serving thread can run grad-free batches while
/// a training loop builds tapes on another thread.
class GradMode {
 public:
  /// True (the default) when ops record the autograd tape on this thread.
  static bool IsEnabled();
  static void SetEnabled(bool enabled);
};

/// RAII scope that disables gradient recording on the current thread.
/// Nests: each guard restores the mode that was active when it was built.
///
///   NoGradGuard guard;                   // inference mode
///   Variable logits = model.Forward(x);  // no tape, no retained activations
class NoGradGuard {
 public:
  NoGradGuard() : prev_(GradMode::IsEnabled()) { GradMode::SetEnabled(false); }
  ~NoGradGuard() { GradMode::SetEnabled(prev_); }

  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// A node in a dynamically built reverse-mode autodiff graph.
///
/// Variable is a cheap handle (shared_ptr) to a value tensor plus, when
/// `requires_grad` is set anywhere upstream, the bookkeeping needed to
/// back-propagate. Operations on Variables live in tensor/autograd_ops.h;
/// each records a closure that pushes gradients to its parents.
///
/// Typical use:
///   Variable w = Variable::Parameter(Tensor::Randn({4, 4}, &rng));
///   Variable y = autograd::MatMul(x, w);
///   Variable loss = autograd::MeanAll(y);
///   Backward(loss);       // w.grad() now holds dloss/dw
class Variable {
 public:
  /// An empty (null) handle.
  Variable() = default;

  /// Wraps a constant (no gradient tracking).
  explicit Variable(Tensor value);

  /// A leaf that accumulates gradient (model parameter).
  static Variable Parameter(Tensor value);
  /// A constant leaf (input data).
  static Variable Constant(Tensor value);

  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const;
  Tensor& mutable_value();

  /// The accumulated gradient. Undefined before Backward(); zero-filled
  /// lazily. Pre-condition: requires_grad().
  const Tensor& grad() const;
  Tensor& mutable_grad();

  bool requires_grad() const;

  const Shape& shape() const { return value().shape(); }
  int64_t dim(int64_t i) const { return value().dim(i); }
  int64_t size() const { return value().size(); }

  /// Zeroes the gradient buffer (if allocated).
  void ZeroGrad();

  /// Internal node access for the autograd ops / engine.
  const std::shared_ptr<internal::VarNode>& node() const { return node_; }

  /// Creates an op result node. `parents` are the inputs whose gradients
  /// `backward_fn` fills; `backward_fn` receives the result node's gradient.
  /// When GradMode is disabled on the calling thread, `parents` and
  /// `backward_fn` are discarded and the result is a plain constant.
  /// `op` (a string literal or nullptr) names the node for the obs tape
  /// profiler: Backward() emits a per-node span and aggregates per-op time
  /// under "autograd.<op>" when profiling is enabled.
  static Variable MakeOpResult(
      Tensor value, std::vector<Variable> parents,
      std::function<void(const Tensor& grad_out)> backward_fn,
      const char* op = nullptr);

 private:
  std::shared_ptr<internal::VarNode> node_;
};

namespace internal {

struct VarNode {
  Tensor value;
  Tensor grad;
  bool grad_allocated = false;
  bool requires_grad = false;
  bool is_leaf = true;
  /// Op name for profiling (string literal; nullptr for unnamed ops).
  const char* op = nullptr;
  std::vector<Variable> parents;
  std::function<void(const Tensor& grad_out)> backward_fn;

  /// Lazily allocates and returns the gradient buffer.
  Tensor& EnsureGrad();
};

}  // namespace internal

/// Runs reverse-mode accumulation from `root` (typically a scalar loss).
/// Seeds d(root)/d(root) = 1 and visits the graph in reverse topological
/// order. After the call the graph edges are released so that activation
/// memory can be reclaimed; leaf gradients remain.
void Backward(const Variable& root);

/// Numerically estimates d(f)/d(x) at x via central differences and
/// returns the max abs difference to the analytic gradient obtained by
/// Backward. Used by the gradient-check tests. f must rebuild the graph
/// on every call. `eps` is the finite-difference step.
float GradCheck(const std::function<Variable(const Variable&)>& f,
                const Tensor& x, float eps = 1e-3f);

}  // namespace emx

#endif  // EMX_TENSOR_VARIABLE_H_
