#ifndef EMX_TENSOR_TENSOR_H_
#define EMX_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace emx {

/// Shape of a dense tensor; dimension sizes in row-major order.
using Shape = std::vector<int64_t>;

/// Process-wide tensor-buffer accounting. Every buffer a Tensor allocates
/// (constructors, Clone; not Reshape, which shares storage) bumps
/// `live_bytes` until its last owner releases it; `peak_bytes` is the
/// high-water mark since the last ResetTensorMemPeak(). Counters are plain
/// relaxed atomics, so reading them while kernels run is safe; they exist
/// so benches and tests can show a kernel *didn't* materialize something
/// (e.g. the fused attention path never allocating the [B, h, T, T] prob
/// tensor) without resorting to RSS, which never shrinks.
struct TensorMemStats {
  int64_t live_bytes = 0;
  int64_t peak_bytes = 0;
};

/// Snapshot of the current accounting.
TensorMemStats GetTensorMemStats();

/// Sets peak_bytes to the current live_bytes.
void ResetTensorMemPeak();

/// Returns the number of elements implied by a shape (1 for rank 0).
int64_t NumElements(const Shape& shape);

/// Formats e.g. "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

/// A dense, contiguous, row-major float32 tensor.
///
/// Copying a Tensor is cheap: copies share the underlying buffer (like
/// arrow::Buffer or torch tensors). Use Clone() for a deep copy. All math
/// lives in tensor_ops.h; the class itself only manages storage and shape.
///
/// A tensor can also *view* external read-only storage (FromExternal) —
/// e.g. fp32 payloads inside a mapped EMXM container. Views are full
/// tensors for every read path, but writing through one is undefined
/// behavior (a PROT_READ mapping faults); Clone() materializes a mutable
/// heap copy. Views hold a keepalive reference so the storage outlives
/// every copy and Reshape of the view.
class Tensor {
 public:
  /// An empty rank-1 tensor of size 0.
  Tensor();

  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Wraps existing values; `values.size()` must equal NumElements(shape).
  Tensor(Shape shape, std::vector<float> values);

  /// Views existing read-only storage without copying. `data` must hold
  /// NumElements(shape) floats and stay valid while `keepalive` is held.
  /// The view is not counted by the tensor-memory accounting (it owns no
  /// buffer). Pre-condition: data != nullptr unless the shape is empty.
  static Tensor FromExternal(Shape shape, const float* data,
                             std::shared_ptr<const void> keepalive);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  // ---- Factories -----------------------------------------------------

  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, float value);
  /// Rank-0 style scalar, stored as shape {1}.
  static Tensor Scalar(float value);
  /// I.i.d. N(0, stddev^2) entries.
  static Tensor Randn(Shape shape, Rng* rng, float stddev = 1.0f);
  /// I.i.d. uniform entries in [lo, hi).
  static Tensor RandUniform(Shape shape, Rng* rng, float lo, float hi);
  /// 1-D tensor [0, 1, ..., n-1].
  static Tensor Arange(int64_t n);

  // ---- Introspection -------------------------------------------------

  const Shape& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  /// Size of dimension `i`; negative `i` counts from the back.
  int64_t dim(int64_t i) const;
  int64_t size() const { return size_; }

  float* data() {
    return ext_ != nullptr ? const_cast<float*>(ext_) : data_->data();
  }
  const float* data() const {
    return ext_ != nullptr ? ext_ : data_->data();
  }

  /// True for a FromExternal view; writing through such a tensor is UB.
  bool is_external() const { return ext_ != nullptr; }

  /// Flat element access. Pre-condition: 0 <= i < size().
  float& operator[](int64_t i) { return data()[i]; }
  float operator[](int64_t i) const { return data()[i]; }

  /// Multi-dimensional access, e.g. t.At({b, t, h}).
  float& At(std::initializer_list<int64_t> idx);
  float At(std::initializer_list<int64_t> idx) const;

  /// True when two tensors share the same buffer.
  bool SharesDataWith(const Tensor& other) const {
    return ext_ != nullptr || other.ext_ != nullptr ? ext_ == other.ext_
                                                    : data_ == other.data_;
  }

  // ---- Storage-level operations --------------------------------------

  /// Deep copy.
  Tensor Clone() const;

  /// Returns a tensor with the new shape sharing this buffer.
  /// Pre-condition: NumElements(new_shape) == size(). One dimension may be
  /// -1 and is inferred.
  Tensor Reshape(Shape new_shape) const;

  /// Sets every element to `value`.
  void Fill(float value);

  /// Element-wise accumulate: this += other. Shapes must match.
  void AddInPlace(const Tensor& other);

  /// this *= scalar.
  void ScaleInPlace(float scalar);

  /// Copies values out.
  std::vector<float> ToVector() const;

  /// Human-readable preview (truncated for large tensors).
  std::string ToString(int64_t max_per_dim = 8) const;

 private:
  int64_t FlatIndex(std::initializer_list<int64_t> idx) const;

  Shape shape_;
  int64_t size_ = 0;
  std::shared_ptr<std::vector<float>> data_;
  /// External read-only storage (FromExternal); data_ is unused when set.
  const float* ext_ = nullptr;
  std::shared_ptr<const void> keepalive_;
};

}  // namespace emx

#endif  // EMX_TENSOR_TENSOR_H_
