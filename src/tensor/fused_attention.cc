#include "tensor/fused_attention.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "obs/trace.h"
#include "tensor/kernel_math.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace emx {
namespace ops {
namespace {

// Tiling: each work item is one (batch, head, row-tile) triple. Scores for
// the kRowTile query rows live in thread-local scratch shaped
// [kRowTile, Tk] — the only place a score row ever exists — while K is
// streamed through a [head_dim, kColTile] transposed pack so the dot
// products vectorize across columns. kColTile also bounds the on-stack
// accumulator of the score micro-loop.
constexpr int64_t kRowTile = 32;
constexpr int64_t kColTile = 64;

inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Broadcast view of the additive mask: row (b, h, i) of the logical
/// [B, heads, Tq, Tk] score tensor reads mask row
/// data + b*b_stride + h*h_stride + i*i_stride (stride 0 = broadcast).
struct MaskView {
  const float* data = nullptr;
  int64_t b_stride = 0;
  int64_t h_stride = 0;
  int64_t i_stride = 0;

  const float* Row(int64_t b, int64_t h, int64_t i) const {
    return data == nullptr
               ? nullptr
               : data + b * b_stride + h * h_stride + i * i_stride;
  }
};

MaskView ResolveMask(const Tensor& mask, int64_t b, int64_t heads, int64_t tq,
                     int64_t tk) {
  MaskView view;
  if (mask.size() == 0) return view;
  EMX_CHECK_EQ(mask.ndim(), 4)
      << "FusedAttention mask must be rank 4, got "
      << ShapeToString(mask.shape());
  EMX_CHECK(mask.dim(0) == b || mask.dim(0) == 1);
  EMX_CHECK(mask.dim(1) == heads || mask.dim(1) == 1);
  EMX_CHECK(mask.dim(2) == tq || mask.dim(2) == 1);
  EMX_CHECK_EQ(mask.dim(3), tk)
      << "FusedAttention mask key axis mismatch: "
      << ShapeToString(mask.shape());
  view.data = mask.data();
  const int64_t rows = mask.dim(2);
  view.i_stride = mask.dim(2) == 1 ? 0 : tk;
  view.h_stride = mask.dim(1) == 1 ? 0 : rows * tk;
  view.b_stride = mask.dim(0) == 1 ? 0 : mask.dim(1) * rows * tk;
  return view;
}

/// Grows (never shrinks) a thread-local scratch vector.
inline float* Scratch(std::vector<float>* buf, int64_t n) {
  if (static_cast<int64_t>(buf->size()) < n) {
    buf->resize(static_cast<size_t>(n));
  }
  return buf->data();
}

void CheckQkvShapes(const Tensor& q, const Tensor& k, const Tensor& v,
                    int64_t num_heads) {
  EMX_CHECK_EQ(q.ndim(), 3);
  EMX_CHECK(k.shape() == v.shape())
      << "FusedAttention k/v shape mismatch: " << ShapeToString(k.shape())
      << " vs " << ShapeToString(v.shape());
  EMX_CHECK_EQ(k.ndim(), 3);
  EMX_CHECK_EQ(q.dim(0), k.dim(0));
  EMX_CHECK_EQ(q.dim(2), k.dim(2));
  EMX_CHECK_GT(num_heads, 0);
  EMX_CHECK_EQ(q.dim(2) % num_heads, 0)
      << "hidden " << q.dim(2) << " not divisible by " << num_heads
      << " heads";
}

}  // namespace

namespace {

inline uint64_t DropoutHash(uint64_t seed, int64_t idx) {
  return SplitMix64(seed ^ (static_cast<uint64_t>(idx) * 0xd1342543de82ef95ULL +
                            0x2545f4914f6cdd1dULL));
}

/// Drop iff hash < p * 2^64: a pure integer compare, so the kernel loops
/// stay free of float divisions and int-to-double conversions.
inline uint64_t DropoutThreshold(float dropout_p) {
  return static_cast<uint64_t>(static_cast<double>(dropout_p) * 0x1.0p64);
}

}  // namespace

float FusedDropoutScale(uint64_t seed, int64_t idx, float dropout_p) {
  return DropoutHash(seed, idx) < DropoutThreshold(dropout_p)
             ? 0.0f
             : 1.0f / (1.0f - dropout_p);
}

Tensor FusedAttentionForward(const Tensor& q, const Tensor& k,
                             const Tensor& v, const Tensor& mask,
                             const FusedAttentionConfig& cfg, Tensor* row_max,
                             Tensor* row_sum) {
  CheckQkvShapes(q, k, v, cfg.num_heads);
  const int64_t b = q.dim(0);
  const int64_t tq = q.dim(1);
  const int64_t tk = k.dim(1);
  const int64_t hidden = q.dim(2);
  const int64_t heads = cfg.num_heads;
  const int64_t dh = hidden / heads;
  EMX_TRACE_SPAN("kernel.fused_attention", [&] {
    return obs::KeyValues(
        {{"batch", b}, {"tq", tq}, {"tk", tk}, {"heads", heads}});
  });
  const MaskView mview = ResolveMask(mask, b, heads, tq, tk);
  const float dead_threshold = cfg.penalty * 0.5f;
  const uint64_t drop_thresh = cfg.dropout ? DropoutThreshold(cfg.dropout_p) : 0;
  const float inv_keep = cfg.dropout ? 1.0f / (1.0f - cfg.dropout_p) : 1.0f;

  Tensor out({b, tq, hidden});
  if (row_max != nullptr) *row_max = Tensor({b, heads, tq});
  if (row_sum != nullptr) *row_sum = Tensor({b, heads, tq});
  const float* pq = q.data();
  const float* pk = k.data();
  const float* pv = v.data();
  float* po = out.data();
  float* pm = row_max != nullptr ? row_max->data() : nullptr;
  float* pl = row_sum != nullptr ? row_sum->data() : nullptr;

  const int64_t row_tiles = (tq + kRowTile - 1) / kRowTile;
  const int64_t total_items = b * heads * row_tiles;
  const int64_t item_flops = std::max<int64_t>(
      1, 4 * std::min(kRowTile, tq) * tk * dh);
  const int64_t grain = std::max<int64_t>(1, (1 << 18) / item_flops);

  ParallelFor(total_items, grain, [&](int64_t begin, int64_t end) {
    // Thread-local so steady-state forwards allocate nothing; each buffer
    // only ever grows to the largest shape this thread has seen (same
    // pattern as the int8 GEMM scratch).
    thread_local std::vector<float> t_scores;
    thread_local std::vector<float> t_kpack;
    float* scores = Scratch(&t_scores, kRowTile * tk);
    float* kpack = Scratch(&t_kpack, dh * kColTile);

    for (int64_t item = begin; item < end; ++item) {
      const int64_t bi = item / (heads * row_tiles);
      const int64_t hi = (item / row_tiles) % heads;
      const int64_t rt = item % row_tiles;
      const int64_t i0 = rt * kRowTile;
      const int64_t i1 = std::min(i0 + kRowTile, tq);
      const int64_t br = i1 - i0;
      const float* qb = pq + bi * tq * hidden + hi * dh;
      const float* kb = pk + bi * tk * hidden + hi * dh;
      const float* vb = pv + bi * tk * hidden + hi * dh;
      float* ob = po + bi * tq * hidden + hi * dh;

      // Pass 1: score rows into scratch with the online max recurrence
      // m_i <- max(m_i, s_ij) folded into the K-tile stream.
      float m_run[kRowTile];
      for (int64_t i = 0; i < br; ++i) {
        m_run[i] = -std::numeric_limits<float>::infinity();
      }
      for (int64_t j0 = 0; j0 < tk; j0 += kColTile) {
        const int64_t jb = std::min(kColTile, tk - j0);
        for (int64_t jj = 0; jj < jb; ++jj) {
          const float* krow = kb + (j0 + jj) * hidden;
          for (int64_t d = 0; d < dh; ++d) kpack[d * jb + jj] = krow[d];
        }
        for (int64_t i = 0; i < br; ++i) {
          const float* qrow = qb + (i0 + i) * hidden;
          float acc[kColTile];
          std::fill(acc, acc + jb, 0.0f);
          for (int64_t d = 0; d < dh; ++d) {
            const float qd = qrow[d];
            const float* kt = kpack + d * jb;
            for (int64_t jj = 0; jj < jb; ++jj) {
              acc[jj] = MulAdd(qd, kt[jj], acc[jj]);
            }
          }
          const float* mrow = mview.Row(bi, hi, i0 + i);
          float* srow = scores + i * tk + j0;
          float m = m_run[i];
          for (int64_t jj = 0; jj < jb; ++jj) {
            float s = acc[jj] * cfg.scale;
            if (mrow != nullptr && mrow[j0 + jj] != 0.0f) s += cfg.penalty;
            srow[jj] = s;
            m = std::max(m, s);
          }
          m_run[i] = m;
        }
      }

      // Pass 2: exact softmax over each scratch row (exp/sum/normalize in
      // ascending j, exactly like ops::Softmax), fully-masked rows zeroed
      // like autograd::MaskedSoftmax, then the dropout scale.
      for (int64_t i = 0; i < br; ++i) {
        float* srow = scores + i * tk;
        const float m = m_run[i];
        float denom = 0.0f;
        for (int64_t j = 0; j < tk; ++j) {
          const float e = std::exp(srow[j] - m);
          srow[j] = e;
          denom += e;
        }
        if (pm != nullptr) {
          const int64_t stat = (bi * heads + hi) * tq + i0 + i;
          pm[stat] = m;
          pl[stat] = denom;
        }
        if (m < dead_threshold) {
          for (int64_t j = 0; j < tk; ++j) srow[j] = 0.0f;
        } else {
          const float inv = 1.0f / denom;
          for (int64_t j = 0; j < tk; ++j) srow[j] *= inv;
        }
        if (cfg.dropout) {
          const int64_t base = ((bi * heads + hi) * tq + i0 + i) * tk;
          for (int64_t j = 0; j < tk; ++j) {
            srow[j] *= DropoutHash(cfg.dropout_seed, base + j) < drop_thresh
                           ? 0.0f
                           : inv_keep;
          }
        }
      }

      // Pass 3: context rows, streaming V tiles; per (i, d) the chain is
      // ascending-j MulAdd from zero, matching the blocked GEMM.
      for (int64_t i = 0; i < br; ++i) {
        const float* srow = scores + i * tk;
        float* orow = ob + (i0 + i) * hidden;
        for (int64_t j = 0; j < tk; ++j) {
          const float pj = srow[j];
          const float* vrow = vb + j * hidden;
          for (int64_t d = 0; d < dh; ++d) {
            orow[d] = MulAdd(pj, vrow[d], orow[d]);
          }
        }
      }
    }
  });
  return out;
}

void FusedAttentionBackward(const Tensor& dout, const Tensor& q,
                            const Tensor& k, const Tensor& v,
                            const Tensor& mask,
                            const FusedAttentionConfig& cfg,
                            const Tensor& row_max, const Tensor& row_sum,
                            Tensor* dq, Tensor* dk, Tensor* dv) {
  EMX_TRACE_SPAN("kernel.fused_attention_bwd");
  CheckQkvShapes(q, k, v, cfg.num_heads);
  EMX_CHECK(dout.shape() == q.shape());
  EMX_CHECK(dq->shape() == q.shape());
  EMX_CHECK(dk->shape() == k.shape());
  EMX_CHECK(dv->shape() == v.shape());
  const int64_t b = q.dim(0);
  const int64_t tq = q.dim(1);
  const int64_t tk = k.dim(1);
  const int64_t hidden = q.dim(2);
  const int64_t heads = cfg.num_heads;
  const int64_t dh = hidden / heads;
  EMX_CHECK_EQ(row_max.size(), b * heads * tq)
      << "FusedAttentionBackward needs the forward row stats";
  const MaskView mview = ResolveMask(mask, b, heads, tq, tk);
  const float dead_threshold = cfg.penalty * 0.5f;
  const uint64_t drop_thresh = cfg.dropout ? DropoutThreshold(cfg.dropout_p) : 0;
  const float inv_keep = cfg.dropout ? 1.0f / (1.0f - cfg.dropout_p) : 1.0f;

  const float* pdo = dout.data();
  const float* pq = q.data();
  const float* pk = k.data();
  const float* pv = v.data();
  const float* pm = row_max.data();
  const float* pl = row_sum.data();
  float* pdq = dq->data();
  float* pdk = dk->data();
  float* pdv = dv->data();

  // One work item per (batch, head): the item owns its (b, h) slices of
  // dq, dk and dv outright, so accumulation needs no atomics and stays
  // deterministic at any thread count.
  ParallelFor(b * heads, 1, [&](int64_t begin, int64_t end) {
    thread_local std::vector<float> t_kpack;   // K^T, [dh, Tk]
    thread_local std::vector<float> t_vpack;   // V^T, [dh, Tk]
    thread_local std::vector<float> t_prob;    // recomputed prob row
    thread_local std::vector<float> t_dprob;   // upstream prob grad row
    thread_local std::vector<float> t_pd;      // prob row after dropout
    float* kpack = Scratch(&t_kpack, dh * tk);
    float* vpack = Scratch(&t_vpack, dh * tk);
    float* prob = Scratch(&t_prob, tk);
    float* dprob = Scratch(&t_dprob, tk);
    float* pdbuf = Scratch(&t_pd, tk);

    for (int64_t item = begin; item < end; ++item) {
      const int64_t bi = item / heads;
      const int64_t hi = item % heads;
      const float* qb = pq + bi * tq * hidden + hi * dh;
      const float* kb = pk + bi * tk * hidden + hi * dh;
      const float* vb = pv + bi * tk * hidden + hi * dh;
      const float* dob = pdo + bi * tq * hidden + hi * dh;
      float* dqb = pdq + bi * tq * hidden + hi * dh;
      float* dkb = pdk + bi * tk * hidden + hi * dh;
      float* dvb = pdv + bi * tk * hidden + hi * dh;

      for (int64_t j = 0; j < tk; ++j) {
        const float* krow = kb + j * hidden;
        const float* vrow = vb + j * hidden;
        for (int64_t d = 0; d < dh; ++d) {
          kpack[d * tk + j] = krow[d];
          vpack[d * tk + j] = vrow[d];
        }
      }

      for (int64_t i = 0; i < tq; ++i) {
        const float* qrow = qb + i * hidden;
        const float* dorow = dob + i * hidden;
        const int64_t stat = (bi * heads + hi) * tq + i;
        const float m = pm[stat];
        // Fully-masked rows attended to nothing in the forward pass
        // (probs all zero), so they propagate nothing backward.
        const float inv_l = m < dead_threshold ? 0.0f : 1.0f / pl[stat];
        const float* mrow = mview.Row(bi, hi, i);

        // Recompute the prob row from the saved statistics: the same
        // ascending-d score chain and exp/normalize ops as the forward
        // pass, so probs are bit-identical to the ones the forward used.
        std::fill(prob, prob + tk, 0.0f);
        for (int64_t d = 0; d < dh; ++d) {
          const float qd = qrow[d];
          const float* kt = kpack + d * tk;
          for (int64_t j = 0; j < tk; ++j) {
            prob[j] = MulAdd(qd, kt[j], prob[j]);
          }
        }
        for (int64_t j = 0; j < tk; ++j) {
          float s = prob[j] * cfg.scale;
          if (mrow != nullptr && mrow[j] != 0.0f) s += cfg.penalty;
          prob[j] = std::exp(s - m) * inv_l;
        }

        // dprob[j] = dout_i . v_j, through the dropout mul if present.
        std::fill(dprob, dprob + tk, 0.0f);
        for (int64_t d = 0; d < dh; ++d) {
          const float dd = dorow[d];
          const float* vt = vpack + d * tk;
          for (int64_t j = 0; j < tk; ++j) {
            dprob[j] = MulAdd(dd, vt[j], dprob[j]);
          }
        }

        // Replay the dropout mask: dv needs the dropped prob row, and the
        // upstream prob gradient passes back through the same scale.
        const float* pd = prob;
        if (cfg.dropout) {
          const int64_t base = ((bi * heads + hi) * tq + i) * tk;
          for (int64_t j = 0; j < tk; ++j) {
            const float ds = DropoutHash(cfg.dropout_seed, base + j) <
                                     drop_thresh
                                 ? 0.0f
                                 : inv_keep;
            pdbuf[j] = prob[j] * ds;
            dprob[j] *= ds;
          }
          pd = pdbuf;
        }

        // dv_j += dropped_prob_j * dout_i; the softmax VJP needs
        // D = sum_j dprob_j * prob_j (post-dropout dprob, pre-dropout prob).
        float dsum = 0.0f;
        for (int64_t j = 0; j < tk; ++j) {
          float* dvj = dvb + j * hidden;
          const float pdj = pd[j];
          for (int64_t d = 0; d < dh; ++d) {
            dvj[d] = MulAdd(pdj, dorow[d], dvj[d]);
          }
          dsum += dprob[j] * prob[j];
        }

        // ds[j] = prob_j * (dprob_j - D); fold the score scale here and
        // scatter into dq_i and dk_j.
        float* dqrow = dqb + i * hidden;
        for (int64_t j = 0; j < tk; ++j) {
          const float dscore = prob[j] * (dprob[j] - dsum) * cfg.scale;
          const float* krow = kb + j * hidden;
          float* dkrow = dkb + j * hidden;
          for (int64_t d = 0; d < dh; ++d) {
            dqrow[d] = MulAdd(dscore, krow[d], dqrow[d]);
            dkrow[d] = MulAdd(dscore, qrow[d], dkrow[d]);
          }
        }
      }
    }
  });
}

}  // namespace ops
}  // namespace emx
