#include "tensor/tensor.h"

#include <atomic>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace emx {

namespace {

std::atomic<int64_t> g_live_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};

void OnBufferAlloc(int64_t bytes) {
  const int64_t live =
      g_live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

/// Wraps a float buffer so that its release is observed by the accounting
/// regardless of which Tensor copy drops the last reference.
std::shared_ptr<std::vector<float>> TrackedBuffer(std::vector<float> values) {
  auto* raw = new std::vector<float>(std::move(values));
  const int64_t bytes =
      static_cast<int64_t>(raw->capacity() * sizeof(float));
  OnBufferAlloc(bytes);
  return std::shared_ptr<std::vector<float>>(
      raw, [bytes](std::vector<float>* p) {
        g_live_bytes.fetch_sub(bytes, std::memory_order_relaxed);
        delete p;
      });
}

}  // namespace

TensorMemStats GetTensorMemStats() {
  TensorMemStats stats;
  stats.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  stats.peak_bytes = g_peak_bytes.load(std::memory_order_relaxed);
  return stats;
}

void ResetTensorMemPeak() {
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

Tensor::Tensor() : Tensor(Shape{0}) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      size_(NumElements(shape_)),
      data_(TrackedBuffer(
          std::vector<float>(static_cast<size_t>(size_), 0.0f))) {
  for (int64_t d : shape_) EMX_CHECK_GE(d, 0);
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)),
      size_(NumElements(shape_)),
      data_(TrackedBuffer(std::move(values))) {
  EMX_CHECK_EQ(size_, static_cast<int64_t>(data_->size()))
      << "value count does not match shape " << ShapeToString(shape_);
}

Tensor Tensor::FromExternal(Shape shape, const float* data,
                            std::shared_ptr<const void> keepalive) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.size_ = NumElements(t.shape_);
  for (int64_t d : t.shape_) EMX_CHECK_GE(d, 0);
  EMX_CHECK(data != nullptr || t.size_ == 0)
      << "external tensor of " << ShapeToString(t.shape_)
      << " needs a data pointer";
  t.data_.reset();
  t.ext_ = data;
  t.keepalive_ = std::move(keepalive);
  return t;
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) { return Full({1}, value); }

Tensor Tensor::Randn(Shape shape, Rng* rng, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    p[i] = static_cast<float>(rng->NextGaussian()) * stddev;
  }
  return t;
}

Tensor Tensor::RandUniform(Shape shape, Rng* rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i) p[i] = rng->NextFloat(lo, hi);
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t({n});
  for (int64_t i = 0; i < n; ++i) t[i] = static_cast<float>(i);
  return t;
}

int64_t Tensor::dim(int64_t i) const {
  const int64_t nd = ndim();
  if (i < 0) i += nd;
  EMX_CHECK(i >= 0 && i < nd) << "dim index " << i << " out of range for "
                              << ShapeToString(shape_);
  return shape_[static_cast<size_t>(i)];
}

int64_t Tensor::FlatIndex(std::initializer_list<int64_t> idx) const {
  EMX_CHECK_EQ(static_cast<int64_t>(idx.size()), ndim());
  int64_t flat = 0;
  size_t d = 0;
  for (int64_t i : idx) {
    EMX_CHECK(i >= 0 && i < shape_[d])
        << "index " << i << " out of range for dim " << d << " of "
        << ShapeToString(shape_);
    flat = flat * shape_[d] + i;
    ++d;
  }
  return flat;
}

float& Tensor::At(std::initializer_list<int64_t> idx) {
  return data()[FlatIndex(idx)];
}

float Tensor::At(std::initializer_list<int64_t> idx) const {
  return data()[FlatIndex(idx)];
}

Tensor Tensor::Clone() const {
  Tensor out;
  out.shape_ = shape_;
  out.size_ = size_;
  out.data_ = TrackedBuffer(std::vector<float>(data(), data() + size_));
  return out;
}

Tensor Tensor::Reshape(Shape new_shape) const {
  int64_t known = 1;
  int infer_at = -1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      EMX_CHECK_EQ(infer_at, -1) << "at most one -1 dimension";
      infer_at = static_cast<int>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer_at >= 0) {
    EMX_CHECK(known > 0 && size_ % known == 0)
        << "cannot infer dimension for reshape of " << ShapeToString(shape_)
        << " to " << ShapeToString(new_shape);
    new_shape[static_cast<size_t>(infer_at)] = size_ / known;
  }
  EMX_CHECK_EQ(NumElements(new_shape), size_)
      << "reshape " << ShapeToString(shape_) << " -> " << ShapeToString(new_shape);
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.size_ = size_;
  out.data_ = data_;
  out.ext_ = ext_;
  out.keepalive_ = keepalive_;
  return out;
}

void Tensor::Fill(float value) {
  float* p = data();
  for (int64_t i = 0; i < size_; ++i) p[i] = value;
}

void Tensor::AddInPlace(const Tensor& other) {
  EMX_CHECK_EQ(size_, other.size_) << "AddInPlace shape mismatch: "
                                   << ShapeToString(shape_) << " vs "
                                   << ShapeToString(other.shape_);
  float* a = data();
  const float* b = other.data();
  for (int64_t i = 0; i < size_; ++i) a[i] += b[i];
}

void Tensor::ScaleInPlace(float scalar) {
  float* p = data();
  for (int64_t i = 0; i < size_; ++i) p[i] *= scalar;
}

std::vector<float> Tensor::ToVector() const {
  return std::vector<float>(data(), data() + size_);
}

std::string Tensor::ToString(int64_t max_per_dim) const {
  std::ostringstream out;
  out << "Tensor" << ShapeToString(shape_) << " ";
  out << "[";
  const int64_t limit = std::min<int64_t>(size_, max_per_dim * max_per_dim);
  for (int64_t i = 0; i < limit; ++i) {
    if (i > 0) out << ", ";
    out << data()[i];
  }
  if (limit < size_) out << ", ...";
  out << "]";
  return out.str();
}

}  // namespace emx
