#include "tensor/variable.h"

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace emx {

namespace internal {

Tensor& VarNode::EnsureGrad() {
  if (!grad_allocated) {
    grad = Tensor(value.shape());
    grad_allocated = true;
  }
  return grad;
}

}  // namespace internal

namespace {
// Default-on so that training code never has to opt in; only inference
// scopes (NoGradGuard) flip it, and only for their own thread.
thread_local bool t_grad_mode_enabled = true;
}  // namespace

bool GradMode::IsEnabled() { return t_grad_mode_enabled; }

void GradMode::SetEnabled(bool enabled) { t_grad_mode_enabled = enabled; }

Variable::Variable(Tensor value) {
  node_ = std::make_shared<internal::VarNode>();
  node_->value = std::move(value);
  node_->requires_grad = false;
  node_->is_leaf = true;
}

Variable Variable::Parameter(Tensor value) {
  Variable v(std::move(value));
  v.node_->requires_grad = true;
  return v;
}

Variable Variable::Constant(Tensor value) { return Variable(std::move(value)); }

const Tensor& Variable::value() const {
  EMX_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  EMX_CHECK(defined());
  return node_->value;
}

const Tensor& Variable::grad() const {
  EMX_CHECK(defined());
  EMX_CHECK(node_->requires_grad) << "grad() on a non-grad Variable";
  const_cast<internal::VarNode*>(node_.get())->EnsureGrad();
  return node_->grad;
}

Tensor& Variable::mutable_grad() {
  EMX_CHECK(defined());
  return node_->EnsureGrad();
}

bool Variable::requires_grad() const {
  return defined() && node_->requires_grad;
}

void Variable::ZeroGrad() {
  if (defined() && node_->grad_allocated) node_->grad.Fill(0.0f);
}

Variable Variable::MakeOpResult(
    Tensor value, std::vector<Variable> parents,
    std::function<void(const Tensor& grad_out)> backward_fn, const char* op) {
  Variable v(std::move(value));
  if (!t_grad_mode_enabled) return v;
  bool any_grad = false;
  for (const auto& p : parents) {
    if (p.requires_grad()) {
      any_grad = true;
      break;
    }
  }
  if (any_grad) {
    v.node_->requires_grad = true;
    v.node_->is_leaf = false;
    v.node_->op = op;
    v.node_->parents = std::move(parents);
    v.node_->backward_fn = std::move(backward_fn);
  }
  return v;
}

void Backward(const Variable& root) {
  EMX_CHECK(root.defined());
  EMX_CHECK(root.requires_grad())
      << "Backward on a graph with no parameters";

  // Iterative post-order DFS producing a topological order (parents before
  // children in `order`; we process in reverse).
  std::vector<internal::VarNode*> order;
  std::unordered_set<internal::VarNode*> visited;
  struct Frame {
    internal::VarNode* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root.node().get(), 0});
  visited.insert(root.node().get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      internal::VarNode* parent =
          frame.node->parents[frame.next_parent++].node().get();
      if (parent->requires_grad && !visited.count(parent)) {
        visited.insert(parent);
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  // Seed: d(root)/d(root) = 1.
  Tensor& root_grad = root.node()->EnsureGrad();
  root_grad.Fill(1.0f);

  EMX_TRACE_SPAN("autograd.backward", [&] {
    return obs::KeyValues(
        {{"nodes", static_cast<int64_t>(order.size())}});
  });
  const bool profiling = obs::ProfilingEnabled();
  // Per-op backward time for this call, flushed into the Global registry
  // once at the end (named nodes only; see MakeOpResult's `op`).
  std::unordered_map<const char*, int64_t> op_ns;
  // Nodes with a backward_fn but no op tag leak time out of the per-op
  // attribution: counted here so tests can pin this at zero and the per-op
  // backward_ns totals provably sum to the whole backward phase.
  int64_t unnamed = 0;

  // `order` is post-order, so the root is last; walk backwards.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::VarNode* node = *it;
    if (!node->backward_fn) continue;
    if (profiling && node->op != nullptr) {
      obs::TraceSpan span(node->op);
      node->backward_fn(node->EnsureGrad());
      op_ns[node->op] += span.ElapsedNs();
    } else {
      if (profiling) ++unnamed;
      node->backward_fn(node->EnsureGrad());
    }
  }
  if (!op_ns.empty() || unnamed > 0) {
    obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
    for (const auto& [op, ns] : op_ns) {
      registry->GetCounter(std::string("autograd.") + op + ".backward_ns")
          ->Add(ns);
      registry->GetCounter(std::string("autograd.") + op + ".backward_calls")
          ->Add(1);
    }
    if (unnamed > 0) {
      registry->GetCounter("autograd.unnamed.backward_calls")->Add(unnamed);
    }
  }

  // Release graph edges so activations are freed; leaves keep their grads.
  for (internal::VarNode* node : order) {
    if (!node->is_leaf) {
      node->parents.clear();
      node->backward_fn = nullptr;
    }
  }
}

float GradCheck(const std::function<Variable(const Variable&)>& f,
                const Tensor& x, float eps) {
  // Analytic gradient.
  Variable input = Variable::Parameter(x.Clone());
  Variable out = f(input);
  EMX_CHECK_EQ(out.size(), 1) << "GradCheck expects a scalar objective";
  Backward(out);
  Tensor analytic = input.grad().Clone();

  // Numeric gradient via central differences.
  Tensor numeric(x.shape());
  Tensor probe = x.Clone();
  for (int64_t i = 0; i < x.size(); ++i) {
    const float orig = probe[i];
    probe[i] = orig + eps;
    Variable vp = Variable::Constant(probe.Clone());
    const float fp = f(vp).value()[0];
    probe[i] = orig - eps;
    Variable vm = Variable::Constant(probe.Clone());
    const float fm = f(vm).value()[0];
    probe[i] = orig;
    numeric[i] = (fp - fm) / (2.0f * eps);
  }

  float max_diff = 0.0f;
  for (int64_t i = 0; i < x.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(analytic[i] - numeric[i]));
  }
  return max_diff;
}

}  // namespace emx
