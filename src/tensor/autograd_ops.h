#ifndef EMX_TENSOR_AUTOGRAD_OPS_H_
#define EMX_TENSOR_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "tensor/variable.h"
#include "util/rng.h"

namespace emx {
namespace autograd {

// Differentiable operations on Variables. Each builds the forward value via
// the kernels in tensor_ops.h and records a backward closure. All ops are
// pure: they never mutate their inputs.
//
// Inference mode: inside a NoGradGuard scope (variable.h) every op here
// degrades to its forward kernel alone — no parents retained, no backward
// closure allocated — while producing bit-identical values, because the
// value path is shared with the training forward.

// ---- Arithmetic ------------------------------------------------------

/// c = a + b (same shape).
Variable Add(const Variable& a, const Variable& b);
/// c = a - b.
Variable Sub(const Variable& a, const Variable& b);
/// c = a * b (Hadamard).
Variable Mul(const Variable& a, const Variable& b);
/// c = a * s.
Variable MulScalar(const Variable& a, float s);
/// c = a + s.
Variable AddScalar(const Variable& a, float s);
/// y = x + bias, bias shape [H] broadcast over leading dims.
Variable AddBias(const Variable& x, const Variable& bias);

// ---- Linear algebra --------------------------------------------------

/// Batched matmul with optional logical transposes of the last two dims.
/// Batch dims of both operands must be identical (no broadcast here; the
/// non-batched Linear path reshapes to rank-2 first).
Variable MatMul(const Variable& a, const Variable& b, bool trans_a = false,
                bool trans_b = false);

/// Shares storage; backward reshapes the gradient back.
Variable Reshape(const Variable& x, Shape shape);

/// Axis permutation; backward applies the inverse permutation.
Variable Permute(const Variable& x, const std::vector<int64_t>& perm);

/// Permute immediately followed by Reshape, in one node. The permutation
/// materializes a fresh buffer which the reshaped result shares, so the
/// separate Reshape clone of the Permute -> Reshape pair disappears (one
/// materialization instead of two); backward reshapes the gradient back and
/// applies the inverse permutation. `shape` must be fully specified (no -1).
Variable PermuteReshape(const Variable& x, const std::vector<int64_t>& perm,
                        Shape shape);

/// Fused scaled-dot-product multi-head attention over projected q/k/v in
/// [B, T, H] layout with heads interleaved in the last dimension (see
/// tensor/fused_attention.h). Replaces the
/// MatMul -> MulScalar -> MaskedSoftmax -> Dropout -> MatMul chain with one
/// custom-VJP node: the forward streams K/V tiles and never materializes
/// the [B, heads, Tq, Tk] prob tensor; the backward recomputes per-tile
/// probs from saved row max/sum statistics. Forward values are
/// bit-identical to the unfused chain (dropout off); with `train` and
/// dropout_p > 0 a counter-seeded mask (one rng->Next() draw per call)
/// preserves inverted-dropout semantics without storing the mask.
Variable FusedAttention(const Variable& q, const Variable& k,
                        const Variable& v, const Tensor& mask,
                        int64_t num_heads, float dropout_p, bool train,
                        Rng* rng, float penalty = -1e9f);

// ---- Activations -----------------------------------------------------

Variable Relu(const Variable& x);
Variable Gelu(const Variable& x);
Variable Tanh(const Variable& x);
Variable Sigmoid(const Variable& x);

/// Softmax over the last axis.
Variable Softmax(const Variable& x);

/// Softmax over the last axis after adding `penalty` (typically -1e9) at
/// positions where `mask` != 0. The mask is a plain tensor (no gradient)
/// broadcastable as [B, 1, 1, S] against x = [B, H, T, S].
Variable MaskedSoftmax(const Variable& x, const Tensor& mask,
                       float penalty = -1e9f);

/// Log-softmax over the last axis.
Variable LogSoftmax(const Variable& x);

// ---- Normalization / regularization -----------------------------------

/// LayerNorm over the last axis with affine gamma/beta (both shape [H]).
Variable LayerNorm(const Variable& x, const Variable& gamma,
                   const Variable& beta, float eps = 1e-5f);

/// Inverted dropout: scales survivors by 1/(1-p) at train time; identity
/// when `train` is false or p == 0.
Variable Dropout(const Variable& x, float p, bool train, Rng* rng);

// ---- Embedding / selection ---------------------------------------------

/// Rows of `table` ([V, H]) at `ids`; result [ids.size(), H]. The backward
/// pass scatter-adds into the table gradient.
Variable EmbeddingLookup(const Variable& table, const std::vector<int64_t>& ids);

/// x[:, t, :] of a [B, T, H] tensor -> [B, H].
Variable SelectTimeStep(const Variable& x, int64_t t);

/// Concatenation along `axis`.
Variable Concat(const std::vector<Variable>& parts, int64_t axis);

// ---- Reductions / losses ------------------------------------------------

/// Mean over all elements -> scalar.
Variable MeanAll(const Variable& x);
/// Sum over all elements -> scalar.
Variable SumAll(const Variable& x);

/// Mean cross-entropy of logits [N, C] against integer targets (size N).
/// Rows whose target is `ignore_index` contribute nothing.
Variable CrossEntropy(const Variable& logits, const std::vector<int64_t>& targets,
                      int64_t ignore_index = -100);

/// Mean soft-target cross-entropy: -sum_j t[n,j] * log_softmax(s)[n,j],
/// averaged over rows. `soft_targets` is a probability tensor (constant).
/// Used as the distillation loss (caller applies temperature).
Variable SoftCrossEntropy(const Variable& logits, const Tensor& soft_targets);

/// Mean (1 - cosine similarity) between rows of `x` ([N, H]) and rows of
/// the constant `target` ([N, H]). DistilBERT's hidden-state alignment loss.
Variable CosineEmbeddingLoss(const Variable& x, const Tensor& target);

/// Cuts the graph: result has the same value but no parents.
Variable StopGradient(const Variable& x);

}  // namespace autograd
}  // namespace emx

#endif  // EMX_TENSOR_AUTOGRAD_OPS_H_
