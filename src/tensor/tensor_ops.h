#ifndef EMX_TENSOR_TENSOR_OPS_H_
#define EMX_TENSOR_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace emx {
namespace ops {

// Raw (non-differentiable) kernels on dense tensors. The autograd layer in
// tensor/variable.h composes these into differentiable operations; baseline
// models and backward passes call them directly.

// ---- Elementwise -----------------------------------------------------

/// c = a + b. Shapes must match exactly.
Tensor Add(const Tensor& a, const Tensor& b);
/// c = a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
/// c = a * b (Hadamard).
Tensor Mul(const Tensor& a, const Tensor& b);
/// c = a / b.
Tensor Div(const Tensor& a, const Tensor& b);
/// c = a + s.
Tensor AddScalar(const Tensor& a, float s);
/// c = a * s.
Tensor MulScalar(const Tensor& a, float s);

/// y = x + bias where bias has shape [H] and x has shape [..., H].
Tensor AddBias(const Tensor& x, const Tensor& bias);
/// Reduces grad of shape [..., H] to bias grad of shape [H].
Tensor SumToBias(const Tensor& grad, int64_t h);

Tensor Exp(const Tensor& x);
Tensor Log(const Tensor& x);
Tensor Sqrt(const Tensor& x);
Tensor Tanh(const Tensor& x);
Tensor Sigmoid(const Tensor& x);
Tensor Relu(const Tensor& x);
/// dx = dy * 1[x > 0].
Tensor ReluGrad(const Tensor& dy, const Tensor& x);
/// Gaussian error linear unit (tanh approximation, as in BERT).
Tensor Gelu(const Tensor& x);
/// dx = dy * gelu'(x).
Tensor GeluGrad(const Tensor& dy, const Tensor& x);
/// dx = dy * (1 - tanh(x)^2) given y = tanh(x).
Tensor TanhGradFromOutput(const Tensor& dy, const Tensor& y);

// ---- Linear algebra --------------------------------------------------

/// Batched matrix multiply: a has shape [..., M, K] (or [K, M] when
/// trans_a), b has shape [..., K, N] (or [N, K] when trans_b). Leading
/// batch dims must match exactly, or either operand may be rank-2 and is
/// broadcast across the other's batch. Cache-blocked (MC/KC/NC tiling with
/// packed panels) and parallelized across batch x row blocks; per-output
/// accumulation is ascending-k, so results are bit-identical to
/// MatMulNaive at any thread count.
Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// Single-threaded triple-loop reference GEMM with the same shape and
/// broadcast rules as MatMul. Golden reference for tests and the baseline
/// side of the kernel micro-benchmarks; do not use on hot paths.
Tensor MatMulNaive(const Tensor& a, const Tensor& b, bool trans_a = false,
                   bool trans_b = false);

/// Generic axis permutation (materializes the result).
/// `perm` must be a permutation of [0, ndim).
Tensor Permute(const Tensor& x, const std::vector<int64_t>& perm);

/// Swaps the last two axes.
Tensor TransposeLast2(const Tensor& x);

// ---- Reductions ------------------------------------------------------

/// Sum of all elements (returns shape {1}).
Tensor SumAll(const Tensor& x);
/// Mean of all elements (returns shape {1}).
Tensor MeanAll(const Tensor& x);
/// Sums over the last axis: [..., N] -> [...].
Tensor SumLastAxis(const Tensor& x);
/// Row-wise argmax over the last axis: [..., N] -> indices (flattened rows).
std::vector<int64_t> ArgMaxLastAxis(const Tensor& x);

// ---- Softmax family --------------------------------------------------

/// Numerically stable softmax over the last axis.
Tensor Softmax(const Tensor& x);
/// dx given y = softmax(x) and upstream dy: dx = y * (dy - sum(dy*y)).
Tensor SoftmaxGradFromOutput(const Tensor& dy, const Tensor& y);
/// Numerically stable log-softmax over the last axis.
Tensor LogSoftmax(const Tensor& x);

/// Adds `value` at positions where mask != 0. `mask` must be broadcastable
/// against x in the sense that x.shape = [B, H, T, S] and mask.shape is
/// [B, 1, 1, S] or [B, 1, T, S] or exactly x.shape.
Tensor MaskedAdd(const Tensor& x, const Tensor& mask, float value);

// ---- Gather / scatter ------------------------------------------------

/// Embedding lookup: rows of `table` ([V, H]) selected by `ids`;
/// result has shape [ids.size(), H].
Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& ids);
/// Accumulates `grad` rows ([n, H]) into `table_grad` ([V, H]) at `ids`.
void ScatterAddRows(const Tensor& grad, const std::vector<int64_t>& ids,
                    Tensor* table_grad);

/// Selects one time step from [B, T, H] -> [B, H].
Tensor SelectTimeStep(const Tensor& x, int64_t t);
/// Scatter for SelectTimeStep's gradient: adds [B, H] into step t of [B, T, H].
void AddToTimeStep(const Tensor& grad_bh, int64_t t, Tensor* grad_bth);

// ---- Shape manipulation ----------------------------------------------

/// Concatenates along `axis`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& parts, int64_t axis);
/// Splits along `axis` into pieces of the given sizes.
std::vector<Tensor> SplitAxis(const Tensor& x, int64_t axis,
                              const std::vector<int64_t>& sizes);

// ---- LayerNorm -------------------------------------------------------

/// Layer normalization over the last axis with affine parameters.
/// Writes per-row mean and reciprocal stddev for the backward pass.
Tensor LayerNormForward(const Tensor& x, const Tensor& gamma,
                        const Tensor& beta, float eps, Tensor* mean,
                        Tensor* rstd);
/// Backward of LayerNormForward. Outputs dx and accumulates dgamma/dbeta.
Tensor LayerNormBackward(const Tensor& dy, const Tensor& x,
                         const Tensor& gamma, const Tensor& mean,
                         const Tensor& rstd, Tensor* dgamma, Tensor* dbeta);

// ---- Misc -------------------------------------------------------------

/// Max absolute difference between two same-shaped tensors.
float MaxAbsDiff(const Tensor& a, const Tensor& b);
/// True if all |a - b| <= atol + rtol * |b|.
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-4f);

}  // namespace ops
}  // namespace emx

#endif  // EMX_TENSOR_TENSOR_OPS_H_
