#include "pretrain/corpus.h"

#include "data/noise.h"
#include "data/pools.h"
#include "util/string_util.h"

namespace emx {
namespace pretrain {
namespace {

template <typename T>
const T& Pick(const std::vector<T>& pool, Rng* rng) {
  return pool[rng->NextUint64(pool.size())];
}

std::string ProductSentence(Rng* rng) {
  const auto& brand = Pick(data::BrandPool(), rng);
  const auto& type = Pick(data::ProductTypePool(), rng);
  const auto& adj = Pick(data::AdjectivePool(), rng);
  const auto& feature = Pick(data::FeaturePool(), rng);
  const auto& color = Pick(data::ColorPool(), rng);
  const std::string model = data::RandomModelNumber(rng);
  switch (rng->NextUint64(5)) {
    case 0:
      return StrFormat("the %s %s %s is a %s device with %s .", brand.c_str(),
                       model.c_str(), type.c_str(), adj.c_str(), feature.c_str());
    case 1:
      return StrFormat("%s announced the new %s %s , available in %s .",
                       brand.c_str(), model.c_str(), type.c_str(), color.c_str());
    case 2:
      return StrFormat("buyers praise the %s %s for its %s and %s design .",
                       brand.c_str(), type.c_str(), feature.c_str(), adj.c_str());
    case 3:
      return StrFormat("compared to other %ss , the %s %s offers %s at %s dollars .",
                       type.c_str(), brand.c_str(), model.c_str(), feature.c_str(),
                       data::PerturbPrice(100 + rng->NextDouble() * 900, 0.0, rng).c_str());
    default:
      return StrFormat("the %s %s ships with %lld gb storage and a %s finish .",
                       brand.c_str(), type.c_str(),
                       static_cast<long long>(16 << rng->NextUint64(5)),
                       color.c_str());
  }
}

std::string MusicSentence(Rng* rng) {
  const auto& w1 = Pick(data::SongWordPool(), rng);
  const auto& w2 = Pick(data::SongWordPool(), rng);
  const std::string artist =
      Pick(data::FirstNamePool(), rng) + " " + Pick(data::LastNamePool(), rng);
  const auto& genre = Pick(data::GenrePool(), rng);
  const auto& label = Pick(data::LabelPool(), rng);
  switch (rng->NextUint64(4)) {
    case 0:
      return StrFormat("%s released the %s single %s %s in %lld .",
                       artist.c_str(), genre.c_str(), w1.c_str(), w2.c_str(),
                       static_cast<long long>(1995 + rng->NextUint64(25)));
    case 1:
      return StrFormat("the album %s %s by %s was produced at %s .", w1.c_str(),
                       w2.c_str(), artist.c_str(), label.c_str());
    case 2:
      return StrFormat("critics called %s %s the best %s track of the year .",
                       w1.c_str(), w2.c_str(), genre.c_str());
    default:
      return StrFormat("%s performs %s music with songs like %s %s .",
                       artist.c_str(), genre.c_str(), w1.c_str(), w2.c_str());
  }
}

std::string CitationSentence(Rng* rng) {
  const auto& verb = Pick(data::ResearchVerbPool(), rng);
  const auto& topic = Pick(data::ResearchTopicPool(), rng);
  const auto& object = Pick(data::ResearchObjectPool(), rng);
  const std::string author =
      Pick(data::FirstNamePool(), rng) + " " + Pick(data::LastNamePool(), rng);
  const auto venue = Split(Pick(data::VenuePool(), rng), '|');
  switch (rng->NextUint64(4)) {
    case 0:
      return StrFormat("%s published %s %s %s at %s in %lld .", author.c_str(),
                       verb.c_str(), topic.c_str(), object.c_str(),
                       venue[0].c_str(),
                       static_cast<long long>(1998 + rng->NextUint64(22)));
    case 1:
      return StrFormat("the paper %s %s %s studies %s .", verb.c_str(),
                       topic.c_str(), object.c_str(), topic.c_str());
    case 2:
      return StrFormat("%s is a leading researcher in %s .", author.c_str(),
                       topic.c_str());
    default:
      return StrFormat("the %s proceedings cover %s and %s .", venue[0].c_str(),
                       topic.c_str(), Pick(data::ResearchTopicPool(), rng).c_str());
  }
}

std::string GenericSentence(Rng* rng) {
  return Pick(data::FillerPhrasePool(), rng) + " .";
}

}  // namespace

std::vector<std::vector<std::string>> GenerateCorpus(const CorpusOptions& options) {
  Rng rng(options.seed);
  std::vector<std::vector<std::string>> corpus;
  corpus.reserve(static_cast<size_t>(options.num_documents));
  for (int64_t d = 0; d < options.num_documents; ++d) {
    const uint64_t domain = rng.NextUint64(3);
    const int64_t sentences = 3 + static_cast<int64_t>(rng.NextUint64(4));
    std::vector<std::string> doc;
    for (int64_t s = 0; s < sentences; ++s) {
      if (rng.NextBernoulli(0.15)) {
        doc.push_back(GenericSentence(&rng));
        continue;
      }
      switch (domain) {
        case 0:
          doc.push_back(ProductSentence(&rng));
          break;
        case 1:
          doc.push_back(MusicSentence(&rng));
          break;
        default:
          doc.push_back(CitationSentence(&rng));
          break;
      }
    }
    corpus.push_back(std::move(doc));
  }
  return corpus;
}

std::vector<std::string> FlattenCorpus(
    const std::vector<std::vector<std::string>>& corpus) {
  std::vector<std::string> out;
  out.reserve(corpus.size());
  for (const auto& doc : corpus) out.push_back(Join(doc, " "));
  return out;
}

}  // namespace pretrain
}  // namespace emx
