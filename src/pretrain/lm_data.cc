#include "pretrain/lm_data.h"

#include <algorithm>

#include "util/logging.h"

namespace emx {
namespace pretrain {

LmBatchBuilder::LmBatchBuilder(
    const tokenizers::Tokenizer* tokenizer,
    const std::vector<std::vector<std::string>>& corpus, LmDataOptions options)
    : tokenizer_(tokenizer), options_(options), rng_(options.seed) {
  docs_.reserve(corpus.size());
  for (const auto& doc : corpus) {
    std::vector<Sentence> sentences;
    for (const auto& s : doc) {
      Sentence ids = tokenizer_->Encode(s);
      if (!ids.empty()) sentences.push_back(std::move(ids));
    }
    if (sentences.size() >= 2) docs_.push_back(std::move(sentences));
  }
  EMX_CHECK(!docs_.empty()) << "corpus has no usable documents";
}

void LmBatchBuilder::SamplePair(Rng* rng, Sentence* a, Sentence* b,
                                bool* is_next) const {
  const auto& doc = docs_[rng->NextUint64(docs_.size())];
  const size_t i = rng->NextUint64(doc.size() - 1);
  *a = doc[i];
  if (rng->NextBernoulli(0.5)) {
    *b = doc[i + 1];
    *is_next = true;
  } else {
    const auto& other = docs_[rng->NextUint64(docs_.size())];
    *b = other[rng->NextUint64(other.size())];
    *is_next = false;
  }
}

void LmBatchBuilder::MaskTokens(Rng* rng, std::vector<int64_t>* ids,
                                const std::vector<bool>& maskable,
                                std::vector<int64_t>* labels) const {
  const auto& sp = tokenizer_->specials();
  labels->assign(ids->size(), -100);
  for (size_t i = 0; i < ids->size(); ++i) {
    if (!maskable[i]) continue;
    if (!rng->NextBernoulli(options_.mask_prob)) continue;
    (*labels)[i] = (*ids)[i];
    const double roll = rng->NextDouble();
    if (roll < options_.mask_token_prob) {
      (*ids)[i] = sp.mask;
    } else if (roll < options_.mask_token_prob + options_.random_token_prob) {
      (*ids)[i] = static_cast<int64_t>(
          rng->NextUint64(static_cast<uint64_t>(tokenizer_->vocab_size())));
    }
    // else: keep the original token (the 10% "unchanged" case).
  }
}

LmBatch LmBatchBuilder::NextMlmBatch(int64_t batch_size, bool use_nsp,
                                     bool dynamic_masking) {
  const auto& sp = tokenizer_->specials();
  const int64_t t = options_.max_seq_len;
  LmBatch out;
  out.batch.batch_size = batch_size;
  out.batch.seq_len = t;
  std::vector<float> pad_flags;
  pad_flags.reserve(static_cast<size_t>(batch_size * t));

  for (int64_t e = 0; e < batch_size; ++e) {
    const int64_t example_id = example_counter_++;
    Sentence a, b;
    bool is_next = true;
    SamplePair(&rng_, &a, &b, &is_next);

    // Assemble [CLS] a [SEP] b [SEP].
    tokenizers::TruncatePair(&a, &b, t - 3);
    std::vector<int64_t> ids;
    std::vector<int64_t> segs;
    std::vector<bool> maskable;
    ids.push_back(sp.cls);
    segs.push_back(0);
    maskable.push_back(false);
    for (int64_t id : a) {
      ids.push_back(id);
      segs.push_back(0);
      maskable.push_back(true);
    }
    ids.push_back(sp.sep);
    segs.push_back(0);
    maskable.push_back(false);
    for (int64_t id : b) {
      ids.push_back(id);
      segs.push_back(1);
      maskable.push_back(true);
    }
    ids.push_back(sp.sep);
    segs.push_back(1);
    maskable.push_back(false);

    // Static masking fixes the corruption per example id; dynamic masking
    // draws fresh randomness every visit (RoBERTa).
    Rng mask_rng = dynamic_masking
                       ? rng_.Fork()
                       : Rng(options_.seed ^
                             (static_cast<uint64_t>(example_id) * 0x9e3779b9ULL));
    std::vector<int64_t> labels;
    MaskTokens(&mask_rng, &ids, maskable, &labels);

    // Pad.
    while (static_cast<int64_t>(ids.size()) < t) {
      ids.push_back(sp.pad);
      segs.push_back(0);
      labels.push_back(-100);
    }
    for (int64_t i = 0; i < t; ++i) {
      pad_flags.push_back(ids[static_cast<size_t>(i)] == sp.pad ? 1.0f : 0.0f);
    }
    out.batch.ids.insert(out.batch.ids.end(), ids.begin(), ids.end());
    out.batch.segment_ids.insert(out.batch.segment_ids.end(), segs.begin(),
                                 segs.end());
    out.lm_labels.insert(out.lm_labels.end(), labels.begin(), labels.end());
    if (use_nsp) out.nsp_labels.push_back(is_next ? 1 : 0);
  }
  out.batch.attention_mask = models::Batch::MakeMask(pad_flags, batch_size, t);
  return out;
}

LmBatch LmBatchBuilder::NextPairBatch(int64_t batch_size) {
  const auto& sp = tokenizer_->specials();
  const int64_t t = options_.max_seq_len;
  LmBatch out;
  out.batch.batch_size = batch_size;
  out.batch.seq_len = t;
  std::vector<float> pad_flags;

  auto noisy_copy = [&](const Sentence& src) {
    Sentence copy;
    for (int64_t id : src) {
      if (rng_.NextBernoulli(0.06)) continue;  // light drop noise
      copy.push_back(id);
    }
    if (copy.empty()) copy.push_back(src[rng_.NextUint64(src.size())]);
    // Light local reordering.
    if (copy.size() > 2 && rng_.NextBernoulli(0.3)) {
      const size_t i = rng_.NextUint64(copy.size() - 1);
      std::swap(copy[i], copy[i + 1]);
    }
    return copy;
  };
  auto mutated_copy = [&](const Sentence& src) {
    Sentence copy = noisy_copy(src);
    // Swap a few tokens for random vocabulary tokens: a near-duplicate
    // that is NOT the same entity — the hard negative EM hinges on.
    const int64_t edits =
        2 + static_cast<int64_t>(rng_.NextUint64(3));  // 2-4 edits
    for (int64_t e2 = 0; e2 < edits && !copy.empty(); ++e2) {
      const size_t pos = rng_.NextUint64(copy.size());
      copy[pos] = static_cast<int64_t>(
          rng_.NextUint64(static_cast<uint64_t>(tokenizer_->vocab_size())));
    }
    return copy;
  };

  for (int64_t e = 0; e < batch_size; ++e) {
    const auto& doc = docs_[rng_.NextUint64(docs_.size())];
    const Sentence& a_src = doc[rng_.NextUint64(doc.size())];
    Sentence a = a_src;
    Sentence b;
    int64_t label;
    if (rng_.NextBernoulli(0.5)) {
      b = noisy_copy(a_src);
      label = 1;
    } else if (rng_.NextBernoulli(0.5)) {
      b = mutated_copy(a_src);
      label = 0;
    } else {
      const auto& other = docs_[rng_.NextUint64(docs_.size())];
      b = other[rng_.NextUint64(other.size())];
      label = 0;
    }

    tokenizers::TruncatePair(&a, &b, t - 3);
    std::vector<int64_t> ids;
    std::vector<int64_t> segs;
    ids.push_back(sp.cls);
    segs.push_back(0);
    for (int64_t id : a) {
      ids.push_back(id);
      segs.push_back(0);
    }
    ids.push_back(sp.sep);
    segs.push_back(0);
    for (int64_t id : b) {
      ids.push_back(id);
      segs.push_back(1);
    }
    ids.push_back(sp.sep);
    segs.push_back(1);
    while (static_cast<int64_t>(ids.size()) < t) {
      ids.push_back(sp.pad);
      segs.push_back(0);
    }
    for (int64_t i = 0; i < t; ++i) {
      pad_flags.push_back(ids[static_cast<size_t>(i)] == sp.pad ? 1.0f : 0.0f);
    }
    out.batch.ids.insert(out.batch.ids.end(), ids.begin(), ids.end());
    out.batch.segment_ids.insert(out.batch.segment_ids.end(), segs.begin(),
                                 segs.end());
    out.nsp_labels.push_back(label);
  }
  out.lm_labels.assign(static_cast<size_t>(batch_size * t), -100);
  out.batch.attention_mask = models::Batch::MakeMask(pad_flags, batch_size, t);
  return out;
}

LmBatch LmBatchBuilder::NextPlmBatch(int64_t batch_size) {
  const auto& sp = tokenizer_->specials();
  const int64_t t = options_.max_seq_len;
  LmBatch out;
  out.batch.batch_size = batch_size;
  out.batch.seq_len = t;
  out.content_mask = Tensor({batch_size, 1, t, t});
  out.query_mask = Tensor({batch_size, 1, t, t});
  std::vector<float> pad_flags;

  for (int64_t e = 0; e < batch_size; ++e) {
    Sentence a, b;
    bool is_next = true;
    SamplePair(&rng_, &a, &b, &is_next);
    tokenizers::TruncatePair(&a, &b, t - 3);

    std::vector<int64_t> ids;
    std::vector<int64_t> segs;
    std::vector<bool> predictable;
    ids.push_back(sp.cls);
    segs.push_back(0);
    predictable.push_back(false);
    for (int64_t id : a) {
      ids.push_back(id);
      segs.push_back(0);
      predictable.push_back(true);
    }
    ids.push_back(sp.sep);
    segs.push_back(0);
    predictable.push_back(false);
    for (int64_t id : b) {
      ids.push_back(id);
      segs.push_back(1);
      predictable.push_back(true);
    }
    ids.push_back(sp.sep);
    segs.push_back(1);
    predictable.push_back(false);
    const int64_t real_len = static_cast<int64_t>(ids.size());
    while (static_cast<int64_t>(ids.size()) < t) {
      ids.push_back(sp.pad);
      segs.push_back(0);
      predictable.push_back(false);
    }

    // Sample a factorization order over the real positions.
    std::vector<size_t> order = rng_.Permutation(static_cast<size_t>(real_len));
    std::vector<int64_t> perm_pos(static_cast<size_t>(t), 0);
    for (size_t rank = 0; rank < order.size(); ++rank) {
      perm_pos[order[rank]] = static_cast<int64_t>(rank);
    }

    // Targets: the last ~1/6 of the order among predictable positions.
    const int64_t cutoff = real_len - std::max<int64_t>(1, real_len / 6);
    std::vector<int64_t> labels(static_cast<size_t>(t), -100);
    for (int64_t i = 0; i < real_len; ++i) {
      if (predictable[static_cast<size_t>(i)] &&
          perm_pos[static_cast<size_t>(i)] >= cutoff) {
        labels[static_cast<size_t>(i)] = ids[static_cast<size_t>(i)];
      }
    }

    // Masks: content allows perm-earlier-or-self, query strictly earlier.
    // Padding is blocked everywhere.
    for (int64_t i = 0; i < t; ++i) {
      for (int64_t j = 0; j < t; ++j) {
        const bool pad = j >= real_len;
        const bool content_ok =
            !pad && i < real_len && perm_pos[static_cast<size_t>(j)] <=
                                        perm_pos[static_cast<size_t>(i)];
        const bool query_ok =
            !pad && i < real_len && perm_pos[static_cast<size_t>(j)] <
                                        perm_pos[static_cast<size_t>(i)];
        out.content_mask.At({e, 0, i, j}) = content_ok ? 0.0f : 1.0f;
        out.query_mask.At({e, 0, i, j}) = query_ok ? 0.0f : 1.0f;
      }
    }

    for (int64_t i = 0; i < t; ++i) {
      pad_flags.push_back(i >= real_len ? 1.0f : 0.0f);
    }
    out.batch.ids.insert(out.batch.ids.end(), ids.begin(), ids.end());
    out.batch.segment_ids.insert(out.batch.segment_ids.end(), segs.begin(),
                                 segs.end());
    out.lm_labels.insert(out.lm_labels.end(), labels.begin(), labels.end());
  }
  out.batch.attention_mask = models::Batch::MakeMask(pad_flags, batch_size, t);
  return out;
}

}  // namespace pretrain
}  // namespace emx
