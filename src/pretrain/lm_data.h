#ifndef EMX_PRETRAIN_LM_DATA_H_
#define EMX_PRETRAIN_LM_DATA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "models/config.h"
#include "tokenizers/tokenizer.h"
#include "util/rng.h"

namespace emx {
namespace pretrain {

/// A pre-training batch: the (possibly corrupted) inputs plus the
/// objective-specific targets.
struct LmBatch {
  models::Batch batch;
  /// Per-token prediction targets, -100 where no loss is taken.
  std::vector<int64_t> lm_labels;
  /// Next-sentence labels (1 = B follows A); empty when NSP is off.
  std::vector<int64_t> nsp_labels;
  /// Permutation-LM structural masks ([B, 1, T, T]); empty for MLM.
  Tensor content_mask;
  Tensor query_mask;
};

/// Options shared by the masked-LM and permutation-LM builders.
struct LmDataOptions {
  int64_t max_seq_len = 48;
  /// Fraction of tokens selected for prediction.
  double mask_prob = 0.15;
  /// Of the selected tokens: 80% -> [MASK], 10% -> random, 10% -> kept
  /// (Devlin et al.).
  double mask_token_prob = 0.8;
  double random_token_prob = 0.1;
  uint64_t seed = 31337;
};

/// Builds pre-training batches from a sentence-segmented corpus.
///
/// Masking modes follow the papers: BERT's masking is *static* — the mask
/// for a given example is fixed once (emulated by seeding the mask draw
/// with the example index) — while RoBERTa re-samples the mask each time an
/// example is visited (*dynamic* masking). XLNet batches carry permutation
/// masks for two-stream attention instead of [MASK] corruption.
class LmBatchBuilder {
 public:
  LmBatchBuilder(const tokenizers::Tokenizer* tokenizer,
                 const std::vector<std::vector<std::string>>& corpus,
                 LmDataOptions options);

  /// Masked-LM batch. `use_nsp` adds 50% random-next sentence pairs and
  /// labels; `dynamic_masking` re-samples masks per call.
  LmBatch NextMlmBatch(int64_t batch_size, bool use_nsp, bool dynamic_masking);

  /// Permutation-LM batch for XLNet: inputs are uncorrupted, targets are
  /// the last sixth of a sampled factorization order, and the two
  /// [B,1,T,T] masks encode the order for the content and query streams.
  LmBatch NextPlmBatch(int64_t batch_size);

  /// Copy-discrimination batch (unsupervised, built from raw corpus text):
  /// segment B is either a *noisy copy* of A (label 1: token drops, light
  /// reordering, small numeric edits) or a negative (label 0: a random
  /// other sentence, or — the hard half — a *mutated copy* of A with a few
  /// content tokens swapped). Training the pooled CLS on this task builds
  /// the cross-segment token-comparison circuits that the paper's models
  /// acquire from web-scale pre-training; see DESIGN.md (substitutions).
  /// Labels arrive in `nsp_labels`; `lm_labels` is all -100.
  LmBatch NextPairBatch(int64_t batch_size);

  int64_t num_documents() const { return static_cast<int64_t>(docs_.size()); }

 private:
  /// Token ids of one sentence.
  using Sentence = std::vector<int64_t>;

  /// Draws a (sentence A, sentence B, is_next) triple.
  void SamplePair(Rng* rng, Sentence* a, Sentence* b, bool* is_next) const;

  /// Applies BERT-style corruption in place; fills labels (-100 default).
  void MaskTokens(Rng* rng, std::vector<int64_t>* ids,
                  const std::vector<bool>& maskable,
                  std::vector<int64_t>* labels) const;

  const tokenizers::Tokenizer* tokenizer_;
  LmDataOptions options_;
  std::vector<std::vector<Sentence>> docs_;
  Rng rng_;
  int64_t example_counter_ = 0;
};

}  // namespace pretrain
}  // namespace emx

#endif  // EMX_PRETRAIN_LM_DATA_H_
