#ifndef EMX_PRETRAIN_MODEL_ZOO_H_
#define EMX_PRETRAIN_MODEL_ZOO_H_

#include <memory>
#include <string>

#include "models/config.h"
#include "models/transformer.h"
#include "pretrain/corpus.h"
#include "pretrain/pretrainer.h"
#include "tokenizers/tokenizer.h"
#include "util/status.h"

namespace emx {
namespace pretrain {

/// A ready-to-fine-tune pre-trained model with its matching tokenizer —
/// the analog of downloading a checkpoint from the Hugging Face hub
/// (paper Section 5.2.4), except the checkpoint is pre-trained by this
/// library and cached on disk.
struct PretrainedBundle {
  std::unique_ptr<models::TransformerModel> model;
  std::unique_ptr<tokenizers::Tokenizer> tokenizer;
};

/// Options controlling the zoo: corpus, vocabulary size, pre-training
/// schedule, and the on-disk cache location.
struct ZooOptions {
  std::string cache_dir = "/tmp/emx_zoo";
  int64_t vocab_size = 2000;
  CorpusOptions corpus;
  PretrainOptions pretrain;
  /// Skip the cache and re-train (ablations).
  bool force_retrain = false;
  /// Skip pre-training entirely: random weights (the "no pre-training"
  /// ablation arm).
  bool skip_pretraining = false;
};

/// Returns a pre-trained transformer of the given architecture, training
/// (and caching) the tokenizer and model on first use. DistilBERT
/// transitively materializes its BERT teacher.
Result<PretrainedBundle> GetPretrained(models::Architecture arch,
                                       const ZooOptions& options);

/// Trains (or loads from cache) only the tokenizer for an architecture.
Result<std::unique_ptr<tokenizers::Tokenizer>> GetTokenizer(
    models::Architecture arch, const ZooOptions& options);

}  // namespace pretrain
}  // namespace emx

#endif  // EMX_PRETRAIN_MODEL_ZOO_H_
