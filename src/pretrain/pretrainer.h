#ifndef EMX_PRETRAIN_PRETRAINER_H_
#define EMX_PRETRAIN_PRETRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "models/transformer.h"
#include "pretrain/lm_data.h"
#include "tokenizers/tokenizer.h"
#include "util/status.h"

namespace emx {
namespace pretrain {

/// Options for the unsupervised pre-training phase.
struct PretrainOptions {
  int64_t steps = 400;
  int64_t batch_size = 16;
  float learning_rate = 3e-4f;
  int64_t warmup_steps = 40;
  LmDataOptions data;
  /// Distillation loss weights (DistilBERT): soft-target KL, hard MLM,
  /// hidden-state cosine alignment.
  float distill_soft_weight = 1.0f;
  float distill_mlm_weight = 1.0f;
  float distill_cosine_weight = 0.5f;
  float distill_temperature = 2.0f;
  /// Weight of the auxiliary copy-discrimination objective applied to all
  /// architectures (0 disables; the ablation bench uses this knob).
  float pair_task_weight = 1.0f;
  /// Log every N steps (0 = silent).
  int64_t log_every = 0;
  uint64_t seed = 4242;
};

/// Result telemetry of a pre-training run.
struct PretrainStats {
  float first_loss = 0;
  float final_loss = 0;
  int64_t steps = 0;
};

/// Pre-trains `model` on `corpus` with the objective matching its
/// architecture, exactly as described in Section 4 of the paper:
///
/// - BERT: masked LM (static masking) + next-sentence prediction.
/// - RoBERTa: masked LM with dynamic masking, no NSP.
/// - XLNet: permutation language modeling with two-stream attention.
/// - DistilBERT: knowledge distillation from a pre-trained BERT `teacher`
///   (required non-null for this architecture): soft-target loss with
///   temperature, the regular MLM loss, and a cosine embedding loss
///   aligning student and teacher hidden states.
Result<PretrainStats> Pretrain(models::TransformerModel* model,
                               const tokenizers::Tokenizer* tokenizer,
                               const std::vector<std::vector<std::string>>& corpus,
                               const PretrainOptions& options,
                               models::TransformerModel* teacher = nullptr);

/// Masked-token prediction accuracy of `model` on freshly built MLM
/// batches — the quick quality probe used by tests and the ablation bench.
double MlmAccuracy(models::TransformerModel* model,
                   const tokenizers::Tokenizer* tokenizer,
                   const std::vector<std::vector<std::string>>& corpus,
                   const LmDataOptions& data_options, int64_t num_batches,
                   int64_t batch_size, uint64_t seed);

}  // namespace pretrain
}  // namespace emx

#endif  // EMX_PRETRAIN_PRETRAINER_H_
