#ifndef EMX_PRETRAIN_CORPUS_H_
#define EMX_PRETRAIN_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace emx {
namespace pretrain {

/// Options for synthetic pre-training corpus generation.
struct CorpusOptions {
  /// Number of documents; each document has several sentences.
  int64_t num_documents = 2000;
  uint64_t seed = 7777;
};

/// Generates the unlabeled pre-training corpus: English-like documents
/// spanning the product, music, and citation domains (drawing from the same
/// word pools as the EM dataset generators, plus generic filler prose).
/// This plays the role of BooksCorpus/Wikipedia in the paper — unlabeled
/// text whose vocabulary covers the downstream task.
///
/// Documents are returned as lists of sentences so the NSP and
/// permutation-LM builders can draw consecutive-sentence pairs.
std::vector<std::vector<std::string>> GenerateCorpus(const CorpusOptions& options);

/// Flattens a corpus into one string per document (for tokenizer training).
std::vector<std::string> FlattenCorpus(
    const std::vector<std::vector<std::string>>& corpus);

}  // namespace pretrain
}  // namespace emx

#endif  // EMX_PRETRAIN_CORPUS_H_
