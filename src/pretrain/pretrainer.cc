#include "pretrain/pretrainer.h"

#include <algorithm>
#include <cmath>

#include "models/encoder.h"
#include "models/xlnet.h"
#include "nn/optimizer.h"
#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace emx {
namespace pretrain {

namespace ag = autograd;

namespace {

/// Row-wise softmax of a plain tensor with temperature.
Tensor SoftmaxWithTemperature(const Tensor& logits, float temperature) {
  return ops::Softmax(ops::MulScalar(logits, 1.0f / temperature));
}

/// Positions (into the flattened [B*T] batch) that carry LM labels, and
/// the labels themselves. Restricting the vocabulary projection to these
/// ~15% of positions is the standard optimization (the loss is identical).
void CollectTargets(const std::vector<int64_t>& lm_labels,
                    std::vector<int64_t>* positions,
                    std::vector<int64_t>* labels) {
  positions->clear();
  labels->clear();
  for (size_t i = 0; i < lm_labels.size(); ++i) {
    if (lm_labels[i] != -100) {
      positions->push_back(static_cast<int64_t>(i));
      labels->push_back(lm_labels[i]);
    }
  }
  if (positions->empty()) {  // degenerate batch: keep one dummy target
    positions->push_back(0);
    labels->push_back(-100);
  }
}

/// Gathers the hidden rows at `positions` from a [B, T, H] tensor.
Variable GatherHidden(const Variable& hidden, int64_t h,
                      const std::vector<int64_t>& positions) {
  Variable flat = ag::Reshape(hidden, {-1, h});
  return ag::EmbeddingLookup(flat, positions);
}

}  // namespace

Result<PretrainStats> Pretrain(models::TransformerModel* model,
                               const tokenizers::Tokenizer* tokenizer,
                               const std::vector<std::vector<std::string>>& corpus,
                               const PretrainOptions& options,
                               models::TransformerModel* teacher) {
  const models::Architecture arch = model->config().arch;
  if (arch == models::Architecture::kDistilBert && teacher == nullptr) {
    return Status::InvalidArgument(
        "DistilBERT pre-training requires a BERT teacher");
  }
  if (model->config().vocab_size < tokenizer->vocab_size()) {
    return Status::InvalidArgument(
        "model vocab smaller than tokenizer vocab");
  }

  LmBatchBuilder builder(tokenizer, corpus, options.data);
  Rng rng(options.seed);

  nn::AdamOptions adam_opts;
  adam_opts.lr = options.learning_rate;
  nn::Adam adam(model->Parameters(), adam_opts);
  // Clamp warmup so short runs (tests, smoke benches) remain valid.
  const int64_t warmup =
      std::min(options.warmup_steps, std::max<int64_t>(1, options.steps / 5));
  nn::LinearWarmupSchedule schedule(options.learning_rate, warmup,
                                    options.steps);

  PretrainStats stats;
  stats.steps = options.steps;

  for (int64_t step = 0; step < options.steps; ++step) {
    adam.ZeroGrad();
    Variable loss;

    switch (arch) {
      case models::Architecture::kBert: {
        auto* bert = dynamic_cast<models::EncoderModel*>(model);
        EMX_CHECK(bert != nullptr);
        LmBatch data = builder.NextMlmBatch(options.batch_size,
                                            /*use_nsp=*/true,
                                            /*dynamic_masking=*/false);
        Variable hidden = bert->EncodeBatch(data.batch, /*train=*/true, &rng);
        std::vector<int64_t> positions, labels;
        CollectTargets(data.lm_labels, &positions, &labels);
        Variable sel = GatherHidden(hidden, bert->config().hidden, positions);
        Variable mlm = bert->MlmLogits(sel, true, &rng);
        Variable mlm_loss = ag::CrossEntropy(mlm, labels);
        Variable pooled = bert->PooledOutput(hidden, true, &rng);
        Variable nsp = bert->NspLogits(pooled, true, &rng);
        Variable nsp_loss = ag::CrossEntropy(nsp, data.nsp_labels);
        loss = ag::Add(mlm_loss, nsp_loss);
        break;
      }
      case models::Architecture::kRoberta: {
        LmBatch data = builder.NextMlmBatch(options.batch_size,
                                            /*use_nsp=*/false,
                                            /*dynamic_masking=*/true);
        Variable hidden = model->EncodeBatch(data.batch, true, &rng);
        std::vector<int64_t> positions, labels;
        CollectTargets(data.lm_labels, &positions, &labels);
        Variable sel = GatherHidden(hidden, model->config().hidden, positions);
        Variable mlm = model->MlmLogits(sel, true, &rng);
        loss = ag::CrossEntropy(mlm, labels);
        break;
      }
      case models::Architecture::kXlnet: {
        auto* xlnet = dynamic_cast<models::XlnetModel*>(model);
        EMX_CHECK(xlnet != nullptr);
        LmBatch data = builder.NextPlmBatch(options.batch_size);
        models::TwoStreamOutput streams = xlnet->TwoStreamForward(
            data.batch, data.content_mask, data.query_mask, true, &rng);
        std::vector<int64_t> positions, labels;
        CollectTargets(data.lm_labels, &positions, &labels);
        Variable sel =
            GatherHidden(streams.query, xlnet->config().hidden, positions);
        Variable logits = xlnet->MlmLogits(sel, true, &rng);
        loss = ag::CrossEntropy(logits, labels);
        break;
      }
      case models::Architecture::kDistilBert: {
        LmBatch data = builder.NextMlmBatch(options.batch_size,
                                            /*use_nsp=*/false,
                                            /*dynamic_masking=*/false);
        // Teacher runs in eval mode with no gradient tracking.
        Rng teacher_rng(7);
        std::vector<int64_t> positions, labels;
        CollectTargets(data.lm_labels, &positions, &labels);
        const int64_t h = model->config().hidden;
        Variable t_hidden =
            teacher->EncodeBatch(data.batch, /*train=*/false, &teacher_rng);
        Variable t_logits = teacher->MlmLogits(
            GatherHidden(t_hidden, h, positions), false, &teacher_rng);

        Variable s_hidden = model->EncodeBatch(data.batch, true, &rng);
        Variable s_logits = model->MlmLogits(
            GatherHidden(s_hidden, h, positions), true, &rng);

        // 1. Soft-target distillation with temperature (Hinton et al.):
        //    CE(student/T, softmax(teacher/T)), scaled by T^2 to keep the
        //    gradient magnitude comparable.
        const float temp = options.distill_temperature;
        Tensor soft_targets = SoftmaxWithTemperature(t_logits.value(), temp);
        Variable soft_loss = ag::SoftCrossEntropy(
            ag::MulScalar(s_logits, 1.0f / temp), soft_targets);
        soft_loss = ag::MulScalar(soft_loss, temp * temp);

        // 2. The usual hard MLM loss.
        Variable mlm_loss = ag::CrossEntropy(s_logits, labels);

        // 3. Cosine alignment of hidden states (all positions).
        Variable s_flat = ag::Reshape(s_hidden, {-1, h});
        Tensor t_flat = t_hidden.value().Reshape({s_flat.dim(0), h});
        Variable cos_loss = ag::CosineEmbeddingLoss(s_flat, t_flat);

        loss = ag::Add(
            ag::Add(ag::MulScalar(soft_loss, options.distill_soft_weight),
                    ag::MulScalar(mlm_loss, options.distill_mlm_weight)),
            ag::MulScalar(cos_loss, options.distill_cosine_weight));
        break;
      }
    }

    // Auxiliary copy-discrimination objective (all architectures): see
    // DESIGN.md — it substitutes for the scale of real pre-training in
    // building cross-segment comparison circuits.
    if (options.pair_task_weight > 0.0f) {
      LmBatch pair = builder.NextPairBatch(options.batch_size);
      Variable ph = model->EncodeBatch(pair.batch, true, &rng);
      Variable ppooled = model->PooledOutput(ph, true, &rng);
      Variable plogits = model->PairLogits(ppooled, true, &rng);
      Variable ploss = ag::CrossEntropy(plogits, pair.nsp_labels);
      loss = ag::Add(loss, ag::MulScalar(ploss, options.pair_task_weight));
    }

    const float loss_value = loss.value()[0];
    if (step == 0) stats.first_loss = loss_value;
    stats.final_loss = loss_value;
    Backward(loss);
    adam.Step(schedule.LearningRate(step));

    if (options.log_every > 0 && step % options.log_every == 0) {
      EMX_LOG(Info) << models::ArchitectureName(arch) << " pretrain step "
                    << step << "/" << options.steps << " loss " << loss_value;
    }
  }
  return stats;
}

double MlmAccuracy(models::TransformerModel* model,
                   const tokenizers::Tokenizer* tokenizer,
                   const std::vector<std::vector<std::string>>& corpus,
                   const LmDataOptions& data_options, int64_t num_batches,
                   int64_t batch_size, uint64_t seed) {
  LmDataOptions opts = data_options;
  opts.seed = seed;
  LmBatchBuilder builder(tokenizer, corpus, opts);
  Rng rng(seed);
  int64_t correct = 0;
  int64_t total = 0;
  for (int64_t b = 0; b < num_batches; ++b) {
    LmBatch data = builder.NextMlmBatch(batch_size, /*use_nsp=*/false,
                                        /*dynamic_masking=*/false);
    Variable hidden = model->EncodeBatch(data.batch, /*train=*/false, &rng);
    std::vector<int64_t> positions, labels;
    for (size_t i = 0; i < data.lm_labels.size(); ++i) {
      if (data.lm_labels[i] != -100) {
        positions.push_back(static_cast<int64_t>(i));
        labels.push_back(data.lm_labels[i]);
      }
    }
    if (positions.empty()) continue;
    Variable flat = ag::Reshape(hidden, {-1, model->config().hidden});
    Variable sel = ag::EmbeddingLookup(flat, positions);
    Variable logits = model->MlmLogits(sel, false, &rng);
    auto preds = ops::ArgMaxLastAxis(logits.value());
    for (size_t i = 0; i < labels.size(); ++i) {
      ++total;
      if (preds[i] == labels[i]) ++correct;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace pretrain
}  // namespace emx
