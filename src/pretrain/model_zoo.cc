#include "pretrain/model_zoo.h"

#include <filesystem>

#include "tokenizers/byte_bpe.h"
#include "tokenizers/unigram.h"
#include "tokenizers/wordpiece.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace emx {
namespace pretrain {
namespace {

namespace fs = std::filesystem;

std::string TokenizerTag(models::Architecture arch) {
  switch (arch) {
    case models::Architecture::kBert:
    case models::Architecture::kDistilBert:
      return "wordpiece";
    case models::Architecture::kRoberta:
      return "bytebpe";
    case models::Architecture::kXlnet:
      return "unigram";
  }
  return "?";
}

std::string CachePrefix(const ZooOptions& options,
                        models::Architecture arch) {
  return options.cache_dir + "/" + TokenizerTag(arch) + "_v" +
         std::to_string(options.vocab_size) + "_c" +
         std::to_string(options.corpus.num_documents) + "_s" +
         std::to_string(options.corpus.seed);
}

Status EnsureCacheDir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create cache dir " + dir);
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<tokenizers::Tokenizer>> GetTokenizer(
    models::Architecture arch, const ZooOptions& options) {
  EMX_RETURN_IF_ERROR(EnsureCacheDir(options.cache_dir));
  const std::string prefix = CachePrefix(options, arch);

  switch (arch) {
    case models::Architecture::kBert:
    case models::Architecture::kDistilBert: {
      const std::string path = prefix + ".vocab";
      if (!options.force_retrain && fs::exists(path)) {
        EMX_ASSIGN_OR_RETURN(auto tok, tokenizers::WordPieceTokenizer::Load(path));
        return {std::make_unique<tokenizers::WordPieceTokenizer>(std::move(tok))};
      }
      auto corpus = FlattenCorpus(GenerateCorpus(options.corpus));
      tokenizers::WordPieceTrainerOptions topts;
      topts.vocab_size = options.vocab_size;
      auto tok = tokenizers::WordPieceTokenizer::Train(corpus, topts);
      EMX_RETURN_IF_ERROR(tok.vocab().Save(path));
      return {std::make_unique<tokenizers::WordPieceTokenizer>(std::move(tok))};
    }
    case models::Architecture::kRoberta: {
      const std::string vpath = prefix + ".vocab";
      const std::string mpath = prefix + ".merges";
      if (!options.force_retrain && fs::exists(vpath) && fs::exists(mpath)) {
        EMX_ASSIGN_OR_RETURN(auto tok,
                             tokenizers::ByteBpeTokenizer::Load(vpath, mpath));
        return {std::make_unique<tokenizers::ByteBpeTokenizer>(std::move(tok))};
      }
      auto corpus = FlattenCorpus(GenerateCorpus(options.corpus));
      tokenizers::ByteBpeTrainerOptions topts;
      topts.vocab_size = options.vocab_size;
      auto tok = tokenizers::ByteBpeTokenizer::Train(corpus, topts);
      EMX_RETURN_IF_ERROR(tok.Save(vpath, mpath));
      return {std::make_unique<tokenizers::ByteBpeTokenizer>(std::move(tok))};
    }
    case models::Architecture::kXlnet: {
      const std::string path = prefix + ".vocab";
      if (!options.force_retrain && fs::exists(path)) {
        EMX_ASSIGN_OR_RETURN(auto tok, tokenizers::UnigramTokenizer::Load(path));
        return {std::make_unique<tokenizers::UnigramTokenizer>(std::move(tok))};
      }
      auto corpus = FlattenCorpus(GenerateCorpus(options.corpus));
      tokenizers::UnigramTrainerOptions topts;
      topts.vocab_size = options.vocab_size;
      auto tok = tokenizers::UnigramTokenizer::Train(corpus, topts);
      EMX_RETURN_IF_ERROR(tok.Save(path));
      return {std::make_unique<tokenizers::UnigramTokenizer>(std::move(tok))};
    }
  }
  return Status::InvalidArgument("unknown architecture");
}

Result<PretrainedBundle> GetPretrained(models::Architecture arch,
                                       const ZooOptions& options) {
  EMX_ASSIGN_OR_RETURN(auto tokenizer, GetTokenizer(arch, options));

  models::TransformerConfig config =
      models::TransformerConfig::Scaled(arch, tokenizer->vocab_size());
  config.max_seq_len =
      std::max<int64_t>(config.max_seq_len, options.pretrain.data.max_seq_len);

  Rng init_rng(options.pretrain.seed ^ static_cast<uint64_t>(arch));
  auto model = models::CreateTransformer(config, &init_rng);

  const std::string model_path = StrFormat(
      "%s_%s_h%lld_l%lld_t%lld_p%d.params", CachePrefix(options, arch).c_str(),
      models::ArchitectureName(arch), static_cast<long long>(config.hidden),
      static_cast<long long>(config.num_layers),
      static_cast<long long>(options.pretrain.steps),
      static_cast<int>(options.pretrain.pair_task_weight * 10));

  if (options.skip_pretraining) {
    return PretrainedBundle{std::move(model), std::move(tokenizer)};
  }

  if (!options.force_retrain && std::filesystem::exists(model_path)) {
    EMX_RETURN_IF_ERROR(nn::LoadParameters(model_path, model->Parameters()));
    return PretrainedBundle{std::move(model), std::move(tokenizer)};
  }

  auto corpus = GenerateCorpus(options.corpus);

  // DistilBERT distills from the (cached) pre-trained BERT teacher.
  std::unique_ptr<models::TransformerModel> teacher_holder;
  models::TransformerModel* teacher = nullptr;
  if (arch == models::Architecture::kDistilBert) {
    EMX_ASSIGN_OR_RETURN(auto bert_bundle,
                         GetPretrained(models::Architecture::kBert, options));
    teacher_holder = std::move(bert_bundle.model);
    teacher = teacher_holder.get();
  }

  EMX_ASSIGN_OR_RETURN(
      auto stats, Pretrain(model.get(), tokenizer.get(), corpus,
                           options.pretrain, teacher));
  EMX_LOG(Info) << models::ArchitectureName(arch) << " pre-trained: loss "
                << stats.first_loss << " -> " << stats.final_loss << " over "
                << stats.steps << " steps";

  EMX_RETURN_IF_ERROR(nn::SaveParameters(model_path, model->Parameters()));
  return PretrainedBundle{std::move(model), std::move(tokenizer)};
}

}  // namespace pretrain
}  // namespace emx
