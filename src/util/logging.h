#ifndef EMX_UTIL_LOGGING_H_
#define EMX_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace emx {

/// Severity levels for the minimal logging facility.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo; tests may lower it.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log line when it is below the active level.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace emx

#define EMX_LOG(level)                                      \
  if (::emx::LogLevel::k##level < ::emx::GetLogLevel())     \
    ;                                                       \
  else                                                      \
    ::emx::internal::LogMessage(::emx::LogLevel::k##level, __FILE__, __LINE__)

/// Invariant check that is active in all build modes. On failure, logs the
/// condition and aborts: these guard programmer errors, not user input.
#define EMX_CHECK(cond)                                                   \
  if (!(cond))                                                            \
  ::emx::internal::LogMessage(::emx::LogLevel::kFatal, __FILE__, __LINE__) \
      << "Check failed: " #cond " "

#define EMX_CHECK_EQ(a, b) EMX_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define EMX_CHECK_NE(a, b) EMX_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define EMX_CHECK_LT(a, b) EMX_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define EMX_CHECK_LE(a, b) EMX_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define EMX_CHECK_GT(a, b) EMX_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define EMX_CHECK_GE(a, b) EMX_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // EMX_UTIL_LOGGING_H_
