#ifndef EMX_UTIL_CSV_H_
#define EMX_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace emx {

/// A parsed CSV file: a header row plus data rows. All fields are strings;
/// typed access is the caller's concern.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or -1 if absent.
  int ColumnIndex(const std::string& name) const;
};

/// Parses one CSV line honoring RFC-4180 quoting ("" escapes a quote).
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Quotes a field if it contains a comma, quote, or newline.
std::string EscapeCsvField(const std::string& field);

/// Reads a CSV file with a header row.
Result<CsvTable> ReadCsv(const std::string& path);

/// Parses CSV content already in memory (first line is the header).
Result<CsvTable> ParseCsv(const std::string& content);

/// Writes a CSV file; returns IoError on failure.
Status WriteCsv(const std::string& path, const CsvTable& table);

/// Serializes to a CSV string.
std::string FormatCsv(const CsvTable& table);

}  // namespace emx

#endif  // EMX_UTIL_CSV_H_
