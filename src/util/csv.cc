#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace emx {

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else {
      if (c == '"') {
        in_quotes = true;
      } else if (c == ',') {
        fields.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
  }
  fields.push_back(current);
  return fields;
}

std::string EscapeCsvField(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

Result<CsvTable> ParseCsv(const std::string& content) {
  CsvTable table;
  std::istringstream in(content);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() && !first) continue;
    auto fields = ParseCsvLine(line);
    if (first) {
      table.header = std::move(fields);
      first = false;
    } else {
      if (fields.size() != table.header.size()) {
        return Status::InvalidArgument(
            "CSV row has " + std::to_string(fields.size()) +
            " fields, header has " + std::to_string(table.header.size()));
      }
      table.rows.push_back(std::move(fields));
    }
  }
  if (first) return Status::InvalidArgument("CSV content is empty");
  return table;
}

Result<CsvTable> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str());
}

std::string FormatCsv(const CsvTable& table) {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += EscapeCsvField(row[i]);
    }
    out.push_back('\n');
  };
  append_row(table.header);
  for (const auto& row : table.rows) append_row(row);
  return out;
}

Status WriteCsv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << FormatCsv(table);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace emx
