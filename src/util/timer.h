#ifndef EMX_UTIL_TIMER_H_
#define EMX_UTIL_TIMER_H_

#include <chrono>
#include <string>

namespace emx {

/// Wall-clock stopwatch used by the fine-tuning harness for the paper's
/// Table 6 (per-epoch training time).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Formats seconds as the paper does, e.g. "2m 42s" or "7s" or "3.5s".
  static std::string FormatDuration(double seconds);

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace emx

#endif  // EMX_UTIL_TIMER_H_
