#ifndef EMX_UTIL_STATUS_H_
#define EMX_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace emx {

/// Error categories used across the library. Modeled after the
/// Arrow/RocksDB status idiom: the library never throws; fallible
/// operations return a Status (or a Result<T>, see below).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kNotImplemented,
  kInternal,
  /// A bounded resource (e.g. a serving request queue) is at capacity.
  kResourceExhausted,
  /// A per-request deadline expired before the work completed.
  kDeadlineExceeded,
  /// The service cannot accept work (e.g. the engine is shut down).
  kUnavailable,
};

/// A Status carries a code and, for errors, a human-readable message.
/// The OK status is cheap to construct and copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status.
/// Use `EMX_ASSIGN_OR_RETURN` to unwrap in Status-returning functions.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or a Status keeps call sites terse,
  /// mirroring arrow::Result.
  Result(T value) : value_(std::move(value)) {}        // NOLINT
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre-condition: ok(). Accessing the value of an error result aborts.
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace emx

/// Propagates a non-OK status to the caller.
#define EMX_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::emx::Status _emx_st = (expr);            \
    if (!_emx_st.ok()) return _emx_st;         \
  } while (0)

#define EMX_CONCAT_IMPL_(x, y) x##y
#define EMX_CONCAT_(x, y) EMX_CONCAT_IMPL_(x, y)

/// Unwraps a Result<T> into `lhs`, or returns its error status.
#define EMX_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto EMX_CONCAT_(_emx_result_, __LINE__) = (rexpr);           \
  if (!EMX_CONCAT_(_emx_result_, __LINE__).ok())                \
    return EMX_CONCAT_(_emx_result_, __LINE__).status();        \
  lhs = std::move(EMX_CONCAT_(_emx_result_, __LINE__)).value()

#endif  // EMX_UTIL_STATUS_H_
