#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace emx {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  has_spare_gaussian_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  EMX_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  EMX_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  EMX_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.size() - 1;
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(&perm);
  return perm;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xda3e39cb94b95bdbULL); }

}  // namespace emx
