#ifndef EMX_UTIL_RNG_H_
#define EMX_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace emx {

/// Deterministic 64-bit pseudo-random generator (splitmix64-seeded
/// xoshiro256**). Every stochastic component of the library draws from an
/// explicitly seeded Rng so that experiments are exactly reproducible;
/// nothing reads global entropy.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator; identical seeds yield identical streams.
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). Pre-condition: bound > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Pre-condition: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [lo, hi).
  float NextFloat(float lo, float hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Bernoulli trial with probability p of returning true.
  bool NextBernoulli(double p);

  /// Samples an index according to non-negative weights (need not be
  /// normalized). Returns weights.size()-1 if all weights are zero.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffles the given indices/items in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = NextUint64(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Returns a permutation of [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Forks an independent stream (for per-worker determinism).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace emx

#endif  // EMX_UTIL_RNG_H_
