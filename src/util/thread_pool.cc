#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace emx {

namespace {

/// Set while a worker runs its loop; lets ParallelFor detect that it was
/// invoked from inside the pool it is about to block on. A worker of pool A
/// may still block on a distinct pool B.
thread_local ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::InWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::Submit(std::function<void()> task) {
  SubmitToGroup(&default_group_, std::move(task));
}

void ThreadPool::SubmitToGroup(TaskGroup* group, std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(Task{group, std::move(fn)});
    ++group->pending;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr error = WaitGroup(&default_group_);
  if (error) std::rethrow_exception(error);
}

std::exception_ptr ThreadPool::WaitGroup(TaskGroup* group) {
  std::unique_lock<std::mutex> lock(mu_);
  group->done.wait(lock, [group] { return group->pending == 0; });
  std::exception_ptr error = group->error;
  group->error = nullptr;
  return error;
}

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr error;
    try {
      task.fn();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error && !task.group->error) task.group->error = error;
      if (--task.group->pending == 0) task.group->done.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int64_t total, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (total <= 0) return;
  if (grain < 1) grain = 1;
  const int64_t workers = static_cast<int64_t>(num_threads());
  if (total <= grain || workers <= 1 || InWorkerThread()) {
    fn(0, total);
    return;
  }
  const int64_t num_chunks = std::min(workers, (total + grain - 1) / grain);
  const int64_t chunk = (total + num_chunks - 1) / num_chunks;

  TaskGroup group;
  for (int64_t begin = chunk; begin < total; begin += chunk) {
    const int64_t end = std::min(begin + chunk, total);
    SubmitToGroup(&group, [&fn, begin, end] { fn(begin, end); });
  }
  // The caller works on the first chunk instead of idling in Wait.
  std::exception_ptr caller_error;
  try {
    fn(0, std::min(chunk, total));
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::exception_ptr group_error = WaitGroup(&group);
  if (group_error) std::rethrow_exception(group_error);
  if (caller_error) std::rethrow_exception(caller_error);
}

ThreadPool* GlobalThreadPool() {
  // Function-local static pointer per the style guide: constructed once,
  // never destroyed, so worker threads outlive all static destructors.
  static ThreadPool* pool = [] {
    size_t n = std::max(1u, std::thread::hardware_concurrency());
    if (const char* env = std::getenv("EMX_NUM_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && v > 0) n = static_cast<size_t>(v);
    }
    return new ThreadPool(n);
  }();
  return pool;
}

void ParallelFor(int64_t total, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  GlobalThreadPool()->ParallelFor(total, grain, fn);
}

}  // namespace emx
