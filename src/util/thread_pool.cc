#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace emx {

namespace {

/// Set while a worker runs its loop; lets ParallelFor detect that it was
/// invoked from inside the pool it is about to block on. A worker of pool A
/// may still block on a distinct pool B.
thread_local ThreadPool* tls_worker_pool = nullptr;

// Profiling-path metrics, resolved once. Only touched when profiling is
// enabled, except the always-on task counter (one relaxed fetch_add per
// task, amortized over a chunk of kernel work).
obs::Counter* PoolTaskCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("threadpool.tasks");
  return c;
}

obs::Histogram* PoolWaitHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global()->GetHistogram(
      "threadpool.queue_wait_us", obs::ExponentialBuckets(1, 4, 12));
  return h;
}

obs::Histogram* PoolRunHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global()->GetHistogram(
      "threadpool.task_run_us", obs::ExponentialBuckets(1, 4, 12));
  return h;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::InWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::Submit(std::function<void()> task) {
  SubmitToGroup(&default_group_, std::move(task));
}

void ThreadPool::SubmitToGroup(TaskGroup* group, std::function<void()> fn) {
  const int64_t enqueued_ns =
      obs::ProfilingEnabled() ? obs::internal::NowNs() : 0;
  size_t depth = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(Task{group, std::move(fn), enqueued_ns});
    ++group->pending;
    depth = tasks_.size();
  }
  task_available_.notify_one();
  if (enqueued_ns != 0) {
    obs::TraceCounterValue("pool.queue_depth", static_cast<double>(depth));
  }
}

void ThreadPool::Wait() {
  std::exception_ptr error = WaitGroup(&default_group_);
  if (error) std::rethrow_exception(error);
}

std::exception_ptr ThreadPool::WaitGroup(TaskGroup* group) {
  std::unique_lock<std::mutex> lock(mu_);
  group->done.wait(lock, [group] { return group->pending == 0; });
  std::exception_ptr error = group->error;
  group->error = nullptr;
  return error;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_worker_pool = this;
  // Per-worker busy time: utilization for worker i over an interval is
  // delta(busy_ns) / interval. Registered up front so an idle worker still
  // shows up as 0 in snapshots.
  obs::Counter* busy_ns = obs::MetricsRegistry::Global()->GetCounter(
      "threadpool.worker." + std::to_string(worker_index) + ".busy_ns");
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    int64_t run_start = 0;
    if (obs::ProfilingEnabled()) {
      run_start = obs::internal::NowNs();
      if (task.enqueued_ns > 0) {
        PoolWaitHistogram()->Record(
            static_cast<double>(run_start - task.enqueued_ns) / 1000.0);
      }
    }
    std::exception_ptr error;
    try {
      task.fn();
    } catch (...) {
      error = std::current_exception();
    }
    PoolTaskCounter()->Add(1);
    if (run_start != 0) {
      const int64_t run_ns = obs::internal::NowNs() - run_start;
      PoolRunHistogram()->Record(static_cast<double>(run_ns) / 1000.0);
      busy_ns->Add(run_ns);
      obs::internal::RecordComplete("pool.task", run_start, run_ns,
                                    std::string());
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error && !task.group->error) task.group->error = error;
      if (--task.group->pending == 0) task.group->done.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int64_t total, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (total <= 0) return;
  if (grain < 1) grain = 1;
  EMX_TRACE_SPAN("pool.parallel_for", [&] {
    return obs::KeyValues({{"total", total}, {"grain", grain}});
  });
  const int64_t workers = static_cast<int64_t>(num_threads());
  if (total <= grain || workers <= 1 || InWorkerThread()) {
    fn(0, total);
    return;
  }
  const int64_t num_chunks = std::min(workers, (total + grain - 1) / grain);
  const int64_t chunk = (total + num_chunks - 1) / num_chunks;

  TaskGroup group;
  for (int64_t begin = chunk; begin < total; begin += chunk) {
    const int64_t end = std::min(begin + chunk, total);
    SubmitToGroup(&group, [&fn, begin, end] { fn(begin, end); });
  }
  // The caller works on the first chunk instead of idling in Wait.
  std::exception_ptr caller_error;
  try {
    fn(0, std::min(chunk, total));
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::exception_ptr group_error = WaitGroup(&group);
  if (group_error) std::rethrow_exception(group_error);
  if (caller_error) std::rethrow_exception(caller_error);
}

ThreadPool* GlobalThreadPool() {
  // Function-local static pointer per the style guide: constructed once,
  // never destroyed, so worker threads outlive all static destructors.
  static ThreadPool* pool = [] {
    size_t n = std::max(1u, std::thread::hardware_concurrency());
    if (const char* env = std::getenv("EMX_NUM_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && v > 0) n = static_cast<size_t>(v);
    }
    return new ThreadPool(n);
  }();
  return pool;
}

void ParallelFor(int64_t total, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  GlobalThreadPool()->ParallelFor(total, grain, fn);
}

}  // namespace emx
