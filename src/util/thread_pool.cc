#include "util/thread_pool.h"

#include <algorithm>

namespace emx {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool* GlobalThreadPool() {
  // Function-local static pointer per the style guide: constructed once,
  // never destroyed, so worker threads outlive all static destructors.
  static ThreadPool* pool =
      new ThreadPool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

void ParallelFor(int64_t total, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (total <= 0) return;
  ThreadPool* pool = GlobalThreadPool();
  const int64_t workers = static_cast<int64_t>(pool->num_threads());
  if (grain < 1) grain = 1;
  if (total <= grain || workers <= 1) {
    fn(0, total);
    return;
  }
  const int64_t num_chunks = std::min(workers, (total + grain - 1) / grain);
  const int64_t chunk = (total + num_chunks - 1) / num_chunks;
  // The caller's lambda runs on pool threads; it must not recursively call
  // ParallelFor (kernels in this library do not).
  for (int64_t begin = 0; begin < total; begin += chunk) {
    const int64_t end = std::min(begin + chunk, total);
    pool->Submit([&fn, begin, end] { fn(begin, end); });
  }
  pool->Wait();
}

}  // namespace emx
