#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace emx {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) parts.emplace_back(text.substr(start, i - start));
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Strip(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool IsPunct(char c) {
  return std::ispunct(static_cast<unsigned char>(c)) != 0;
}

std::vector<std::string> BasicTokenize(std::string_view text, bool lower_case) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (char raw : text) {
    char c = lower_case
                 ? static_cast<char>(std::tolower(static_cast<unsigned char>(raw)))
                 : raw;
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else if (IsPunct(c)) {
      flush();
      tokens.push_back(std::string(1, c));
    } else {
      current.push_back(c);
    }
  }
  flush();
  return tokens;
}

bool ParseFloat(std::string_view text, float* out) {
  if (text.empty()) return false;
  std::string buf(text);
  char* end = nullptr;
  float value = std::strtof(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

bool ParseInt(std::string_view text, int64_t* out) {
  if (text.empty()) return false;
  std::string buf(text);
  char* end = nullptr;
  int64_t value = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace emx
