#include "util/timer.h"

#include <cmath>
#include <cstdint>

#include "util/string_util.h"

namespace emx {

std::string Timer::FormatDuration(double seconds) {
  if (!(seconds > 0)) seconds = 0;  // negatives and NaN clamp to zero
  // Round to whole seconds first, then split into units, so carries
  // propagate (119.6s -> 120 -> "2m 0s", never "1m 60s"). The coarse
  // formats start at 9.95 because that is where "%.1f" would print 10.0.
  if (seconds >= 9.95) {
    const int64_t total = std::llround(seconds);
    if (total >= 60) {
      return StrFormat("%lldm %llds", static_cast<long long>(total / 60),
                       static_cast<long long>(total % 60));
    }
    return StrFormat("%llds", static_cast<long long>(total));
  }
  return StrFormat("%.1fs", seconds);
}

}  // namespace emx
