#include "util/timer.h"

#include <cmath>

#include "util/string_util.h"

namespace emx {

std::string Timer::FormatDuration(double seconds) {
  if (seconds < 0) seconds = 0;
  if (seconds >= 60.0) {
    int mins = static_cast<int>(seconds) / 60;
    int secs = static_cast<int>(std::lround(seconds)) % 60;
    return StrFormat("%dm %ds", mins, secs);
  }
  if (seconds >= 10.0) {
    return StrFormat("%ds", static_cast<int>(std::lround(seconds)));
  }
  return StrFormat("%.1fs", seconds);
}

}  // namespace emx
