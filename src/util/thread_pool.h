#ifndef EMX_UTIL_THREAD_POOL_H_
#define EMX_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace emx {

/// A fixed-size worker pool. Tensor kernels use the process-wide pool via
/// ParallelFor; destroying the pool joins all workers.
///
/// Completion tracking is scoped to *task groups*: every ParallelFor call
/// owns a private group, so concurrent callers never wait on each other's
/// tasks. Submit/Wait operate on a pool-default group and keep the old
/// fire-and-forget semantics. An exception escaping a task is captured in
/// its group and rethrown (first one wins) from ParallelFor / Wait on the
/// calling thread instead of terminating the process. ParallelFor invoked
/// from one of this pool's own workers runs the whole range inline, which
/// makes nested parallel kernels safe (no worker is left to drain the
/// queue, so blocking would deadlock).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution on the pool-default group.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted via Submit() has finished. If any of
  /// those tasks threw, rethrows the first captured exception (and clears
  /// it, so a later Wait() does not rethrow again). Tasks spawned by
  /// ParallelFor belong to per-call groups and are NOT waited on here.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// True iff the calling thread is one of this pool's workers.
  bool InWorkerThread() const;

  /// Runs fn(begin, end) over [0, total) split into contiguous chunks.
  /// Runs inline when total <= grain, the pool has a single worker, or the
  /// caller is itself one of this pool's workers (nested call). Otherwise
  /// the caller executes the first chunk while workers run the rest, and
  /// the call blocks until the whole range is done. The first exception
  /// thrown by any chunk is rethrown on the calling thread.
  void ParallelFor(int64_t total, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

 private:
  /// Per-call completion state; lives on the waiting caller's stack.
  /// `pending` and `error` are guarded by the pool mutex `mu_`.
  struct TaskGroup {
    size_t pending = 0;
    std::exception_ptr error;
    std::condition_variable done;
  };
  struct Task {
    TaskGroup* group;
    std::function<void()> fn;
    /// Enqueue timestamp (obs clock, ns); 0 when profiling was off at
    /// submission — the queue-wait histogram skips those tasks.
    int64_t enqueued_ns = 0;
  };

  void SubmitToGroup(TaskGroup* group, std::function<void()> fn);
  /// Blocks until the group drains; returns (and clears) its first error.
  std::exception_ptr WaitGroup(TaskGroup* group);
  void WorkerLoop(size_t worker_index);

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  TaskGroup default_group_;
  bool shutdown_ = false;
};

/// Returns the shared process-wide pool. Sized by the EMX_NUM_THREADS
/// environment variable when set (and positive), otherwise by
/// hardware_concurrency.
ThreadPool* GlobalThreadPool();

/// ParallelFor on the global pool; see ThreadPool::ParallelFor.
void ParallelFor(int64_t total, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace emx

#endif  // EMX_UTIL_THREAD_POOL_H_
