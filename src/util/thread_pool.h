#ifndef EMX_UTIL_THREAD_POOL_H_
#define EMX_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace emx {

/// A fixed-size worker pool. Tensor kernels use the process-wide pool via
/// ParallelFor; destroying the pool joins all workers.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Returns the shared process-wide pool (hardware_concurrency workers).
ThreadPool* GlobalThreadPool();

/// Runs fn(begin, end) over [0, total) split into contiguous chunks across
/// the global pool. Runs inline when total is small or the pool has a
/// single worker. Blocks until complete.
void ParallelFor(int64_t total, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace emx

#endif  // EMX_UTIL_THREAD_POOL_H_
