#ifndef EMX_EVAL_METRICS_H_
#define EMX_EVAL_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace emx {
namespace eval {

/// Binary-classification counts for the match/no-match task.
struct ConfusionMatrix {
  int64_t true_positive = 0;
  int64_t false_positive = 0;
  int64_t true_negative = 0;
  int64_t false_negative = 0;

  void Add(int64_t predicted, int64_t actual);

  int64_t total() const {
    return true_positive + false_positive + true_negative + false_negative;
  }
};

/// Precision / recall / F1 as the paper reports them: recall is the ratio
/// of true matches predicted vs. all true matches; F1 the harmonic mean.
/// All values in [0, 1]; zero denominators yield 0.
struct PrfScores {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
  double accuracy = 0;
};

PrfScores ComputeScores(const ConfusionMatrix& cm);

/// Convenience: scores directly from prediction/label vectors.
PrfScores ComputeScores(const std::vector<int64_t>& predictions,
                        const std::vector<int64_t>& labels);

/// Mean and sample standard deviation of a series (for 5-run averaging).
struct SeriesStats {
  double mean = 0;
  double stddev = 0;
};
SeriesStats MeanStddev(const std::vector<double>& values);

}  // namespace eval
}  // namespace emx

#endif  // EMX_EVAL_METRICS_H_
