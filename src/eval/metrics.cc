#include "eval/metrics.h"

#include <cmath>

#include "util/logging.h"

namespace emx {
namespace eval {

void ConfusionMatrix::Add(int64_t predicted, int64_t actual) {
  if (actual == 1) {
    if (predicted == 1) {
      ++true_positive;
    } else {
      ++false_negative;
    }
  } else {
    if (predicted == 1) {
      ++false_positive;
    } else {
      ++true_negative;
    }
  }
}

PrfScores ComputeScores(const ConfusionMatrix& cm) {
  PrfScores s;
  const double tp = static_cast<double>(cm.true_positive);
  const double fp = static_cast<double>(cm.false_positive);
  const double fn = static_cast<double>(cm.false_negative);
  if (tp + fp > 0) s.precision = tp / (tp + fp);
  if (tp + fn > 0) s.recall = tp / (tp + fn);
  if (s.precision + s.recall > 0) {
    s.f1 = 2 * s.precision * s.recall / (s.precision + s.recall);
  }
  if (cm.total() > 0) {
    s.accuracy = static_cast<double>(cm.true_positive + cm.true_negative) /
                 static_cast<double>(cm.total());
  }
  return s;
}

PrfScores ComputeScores(const std::vector<int64_t>& predictions,
                        const std::vector<int64_t>& labels) {
  EMX_CHECK_EQ(predictions.size(), labels.size());
  ConfusionMatrix cm;
  for (size_t i = 0; i < predictions.size(); ++i) {
    cm.Add(predictions[i], labels[i]);
  }
  return ComputeScores(cm);
}

SeriesStats MeanStddev(const std::vector<double>& values) {
  SeriesStats s;
  if (values.empty()) return s;
  double sum = 0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0;
    for (double v : values) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return s;
}

}  // namespace eval
}  // namespace emx
