#include "data/blocking.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace emx {
namespace data {

std::vector<std::string> TokenBlocker::IndexTokens(const Schema& schema,
                                                   const Record& r,
                                                   int64_t only_attribute) const {
  const std::string text = SerializeRecord(schema, r, only_attribute);
  auto tokens = SplitWhitespace(ToLower(text));
  std::set<std::string> unique(tokens.begin(), tokens.end());
  return std::vector<std::string>(unique.begin(), unique.end());
}

void TokenBlocker::IndexRight(const Schema& schema,
                              const std::vector<Record>& right,
                              int64_t only_attribute) {
  inverted_.clear();
  token_df_.clear();
  num_right_ = static_cast<int64_t>(right.size());
  for (int64_t i = 0; i < num_right_; ++i) {
    for (const auto& tok :
         IndexTokens(schema, right[static_cast<size_t>(i)], only_attribute)) {
      inverted_[tok].push_back(i);
      ++token_df_[tok];
    }
  }
  // Drop overly common tokens from the index entirely. The cutoff is the
  // strict fraction num_right * max_token_frequency (no integer
  // truncation), floored at 1 so tiny collections — where any token
  // crosses the fraction — still keep their singleton tokens instead of
  // emptying the index. Pruned tokens lose their df entry in the same
  // pass; leaving them behind made token_df_ grow without bound at
  // catalog scale.
  const double df_cutoff =
      std::max(1.0, static_cast<double>(num_right_) *
                        options_.max_token_frequency);
  for (auto it = inverted_.begin(); it != inverted_.end();) {
    if (static_cast<double>(token_df_[it->first]) > df_cutoff) {
      token_df_.erase(it->first);
      it = inverted_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<std::pair<int64_t, int64_t>> TokenBlocker::Candidates(
    const Schema& schema, const std::vector<Record>& left,
    int64_t only_attribute) const {
  std::vector<std::pair<int64_t, int64_t>> out;
  std::unordered_map<int64_t, int64_t> shared;  // right index -> count
  for (int64_t li = 0; li < static_cast<int64_t>(left.size()); ++li) {
    shared.clear();
    for (const auto& tok :
         IndexTokens(schema, left[static_cast<size_t>(li)], only_attribute)) {
      auto it = inverted_.find(tok);
      if (it == inverted_.end()) continue;
      for (int64_t ri : it->second) ++shared[ri];
    }
    std::vector<std::pair<int64_t, int64_t>> scored;  // (count, right idx)
    for (const auto& [ri, count] : shared) {
      if (count >= options_.min_shared_tokens) scored.push_back({count, ri});
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    int64_t kept = 0;
    for (const auto& [count, ri] : scored) {
      if (options_.max_candidates_per_record > 0 &&
          kept >= options_.max_candidates_per_record) {
        break;
      }
      out.push_back({li, ri});
      ++kept;
    }
  }
  return out;
}

double TokenBlocker::ReductionRatio(int64_t num_candidates, int64_t num_left,
                                    int64_t num_right) {
  const double total = static_cast<double>(num_left) * static_cast<double>(num_right);
  return total <= 0 ? 0.0 : 1.0 - static_cast<double>(num_candidates) / total;
}

double TokenBlocker::SurvivedFraction(int64_t num_candidates, int64_t num_left,
                                      int64_t num_right) {
  const double total = static_cast<double>(num_left) * static_cast<double>(num_right);
  return total <= 0 ? 0.0 : static_cast<double>(num_candidates) / total;
}

}  // namespace data
}  // namespace emx
