#include "data/generators.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <functional>

#include "data/noise.h"
#include "data/pools.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace emx {
namespace data {
namespace {

template <typename T>
const T& Pick(const std::vector<T>& pool, Rng* rng) {
  return pool[rng->NextUint64(pool.size())];
}

// =====================================================================
// Products (Abt-Buy, Walmart-Amazon)
// =====================================================================

/// Renders a model number the way a second data source might: sometimes a
/// dash at the letter/digit boundary, sometimes split into two tokens,
/// sometimes with a typo. Exact-string features degrade on these variants
/// while subword models still align them.
std::string FormatModelVariant(const std::string& model, Rng* rng) {
  const double roll = rng->NextDouble();
  if (roll < 0.18) {
    // Insert '-' at the first letter->digit boundary.
    for (size_t i = 1; i < model.size(); ++i) {
      const bool boundary = (std::isalpha(static_cast<unsigned char>(model[i - 1])) &&
                             std::isdigit(static_cast<unsigned char>(model[i])));
      if (boundary) {
        return model.substr(0, i) + "-" + model.substr(i);
      }
    }
    return model;
  }
  if (roll < 0.28) {
    // Split into two tokens at the same boundary.
    for (size_t i = 1; i < model.size(); ++i) {
      const bool boundary = (std::isalpha(static_cast<unsigned char>(model[i - 1])) &&
                             std::isdigit(static_cast<unsigned char>(model[i])));
      if (boundary) {
        return model.substr(0, i) + " " + model.substr(i);
      }
    }
    return model;
  }
  if (roll < 0.34) return Typo(model, rng);
  return model;
}

struct ProductEntity {
  std::string brand;
  std::string series;  // marketing word, e.g. "zen"
  std::string model;   // the discriminating token, e.g. "zs551kl"
  std::string type;
  std::string color;
  int64_t storage_gb;
  int64_t size_tenths;  // display size * 10
  double price;
  std::vector<std::string> adjectives;
  std::vector<std::string> features;
  std::string category;
};

std::string SeriesWord(Rng* rng) {
  static const char* kSeries[] = {"zen",  "pro",  "max",  "air",  "neo",
                                  "plus", "lite", "prime", "core", "edge"};
  return kSeries[rng->NextUint64(10)];
}

ProductEntity MakeProduct(Rng* rng) {
  ProductEntity e;
  e.brand = Pick(BrandPool(), rng);
  e.series = SeriesWord(rng);
  e.model = RandomModelNumber(rng);
  e.type = Pick(ProductTypePool(), rng);
  e.color = Pick(ColorPool(), rng);
  e.storage_gb = 16 << rng->NextUint64(5);  // 16..256
  e.size_tenths = 40 + static_cast<int64_t>(rng->NextUint64(300));
  e.price = 40.0 + rng->NextDouble() * 1200.0;
  for (int i = 0; i < 3; ++i) e.adjectives.push_back(Pick(AdjectivePool(), rng));
  for (int i = 0; i < 3; ++i) e.features.push_back(Pick(FeaturePool(), rng));
  e.category = Pick(CategoryPool(), rng);
  return e;
}

/// A hard sibling: same brand/series/type family, different model & specs.
ProductEntity MakeProductSibling(const ProductEntity& base, Rng* rng) {
  ProductEntity e = base;
  e.model = SimilarModelNumber(base.model, rng);
  // Same family, but siblings routinely differ in line or form factor too.
  if (rng->NextBernoulli(0.35)) e.type = Pick(ProductTypePool(), rng);
  if (rng->NextBernoulli(0.35)) e.series = SeriesWord(rng);
  e.size_tenths = 40 + static_cast<int64_t>(rng->NextUint64(300));
  e.color = Pick(ColorPool(), rng);
  e.storage_gb = 16 << rng->NextUint64(5);
  e.price = base.price * (0.85 + rng->NextDouble() * 0.3);
  e.adjectives.clear();
  e.features.clear();
  for (int i = 0; i < 3; ++i) e.adjectives.push_back(Pick(AdjectivePool(), rng));
  for (int i = 0; i < 3; ++i) e.features.push_back(Pick(FeaturePool(), rng));
  return e;
}

std::string ProductSize(const ProductEntity& e) {
  return StrFormat("%lld.%lld", static_cast<long long>(e.size_tenths / 10),
                   static_cast<long long>(e.size_tenths % 10));
}

/// Long textual description, Abt.com style (view A).
std::string ProductDescriptionA(const ProductEntity& e, Rng* rng) {
  std::string model = rng->NextBernoulli(0.08) ? "" : FormatModelVariant(e.model, rng);
  std::string s = StrFormat(
      "the %s %s %s %s . %s and %s , it features %s and %s . %s - inch "
      "display , %lld gb , %s finish . %s .",
      e.brand.c_str(), e.series.c_str(), model.c_str(), e.type.c_str(),
      e.adjectives[0].c_str(), e.adjectives[1].c_str(), e.features[0].c_str(),
      e.features[1].c_str(), ProductSize(e).c_str(),
      static_cast<long long>(e.storage_gb), e.color.c_str(),
      Pick(FillerPhrasePool(), rng).c_str());
  if (rng->NextBernoulli(0.3)) s = ShuffleTokensLightly(s, rng);
  return DropTokens(s, 0.05, rng);
}

/// Long textual description, Buy.com style (view B): different template,
/// some shared and some different facts.
std::string ProductDescriptionB(const ProductEntity& e, Rng* rng) {
  std::string model = rng->NextBernoulli(0.08) ? "" : FormatModelVariant(e.model, rng);
  std::string s = StrFormat(
      "%s 's %s %s %s - %s , a %s - inch model in %s with %lld gb storage . "
      "%s . a %s choice priced around %s dollars .",
      e.brand.c_str(), model.c_str(), e.series.c_str(), e.type.c_str(),
      e.features[2].c_str(), ProductSize(e).c_str(), e.color.c_str(),
      static_cast<long long>(e.storage_gb), Pick(FillerPhrasePool(), rng).c_str(),
      e.adjectives[2].c_str(), PerturbPrice(e.price, 0.3, rng).c_str());
  if (rng->NextBernoulli(0.3)) s = ShuffleTokensLightly(s, rng);
  return DropTokens(s, 0.05, rng);
}

/// Abt-Buy record: [name, description, price]; only description is used by
/// the transformers (the paper ignores the informative title).
Record AbtBuyRecordA(const ProductEntity& e, Rng* rng) {
  Record r;
  r.values.push_back(StrFormat("%s %s %s", e.brand.c_str(), e.series.c_str(),
                               e.type.c_str()));
  r.values.push_back(ProductDescriptionA(e, rng));
  r.values.push_back(rng->NextBernoulli(0.15) ? ""
                                              : PerturbPrice(e.price, 0.25, rng));
  return r;
}

Record AbtBuyRecordB(const ProductEntity& e, Rng* rng) {
  Record r;
  r.values.push_back(StrFormat("%s %s", e.brand.c_str(), e.type.c_str()));
  r.values.push_back(ProductDescriptionB(e, rng));
  r.values.push_back(rng->NextBernoulli(0.15) ? ""
                                              : PerturbPrice(e.price, 0.25, rng));
  return r;
}

/// Walmart-Amazon record: [title, category, brand, modelno, price].
Record WalmartRecord(const ProductEntity& e, Rng* rng) {
  Record r;
  std::string title = StrFormat("%s %s %s %s", e.brand.c_str(),
                                e.series.c_str(),
                                FormatModelVariant(e.model, rng).c_str(),
                                e.type.c_str());
  if (rng->NextBernoulli(0.15)) title = DropTokens(title, 0.2, rng);
  r.values.push_back(title);
  r.values.push_back(e.category);
  r.values.push_back(e.brand);
  r.values.push_back(FormatModelVariant(e.model, rng));
  r.values.push_back(PerturbPrice(e.price, 0.25, rng));
  return r;
}

Record AmazonRecord(const ProductEntity& e, Rng* rng) {
  Record r;
  std::string title =
      StrFormat("%s %s %s , %s %s with %s", e.brand.c_str(),
                FormatModelVariant(e.model, rng).c_str(), e.type.c_str(),
                e.adjectives[0].c_str(), e.color.c_str(),
                e.features[0].c_str());
  if (rng->NextBernoulli(0.2)) title = ShuffleTokensLightly(title, rng);
  r.values.push_back(title);
  r.values.push_back(rng->NextBernoulli(0.2) ? Pick(CategoryPool(), rng)
                                             : e.category);
  r.values.push_back(e.brand);
  r.values.push_back(rng->NextBernoulli(0.2)
                         ? ""
                         : FormatModelVariant(e.model, rng));
  r.values.push_back(PerturbPrice(e.price, 0.25, rng));
  return r;
}

// =====================================================================
// Music (iTunes-Amazon)
// =====================================================================

struct SongEntity {
  std::string song;
  std::string artist;
  std::string album;
  std::string genre;
  std::string label;
  int64_t seconds;
  int64_t year;
  double price;
};

SongEntity MakeSong(Rng* rng) {
  SongEntity e;
  const int words = 2 + static_cast<int>(rng->NextUint64(2));
  std::vector<std::string> w;
  for (int i = 0; i < words; ++i) w.push_back(Pick(SongWordPool(), rng));
  e.song = Join(w, " ");
  e.artist = Pick(FirstNamePool(), rng) + " " + Pick(LastNamePool(), rng);
  e.album = Pick(SongWordPool(), rng) + " " + Pick(SongWordPool(), rng);
  e.genre = Pick(GenrePool(), rng);
  e.label = Pick(LabelPool(), rng);
  e.seconds = 150 + static_cast<int64_t>(rng->NextUint64(180));
  e.year = 1995 + static_cast<int64_t>(rng->NextUint64(25));
  e.price = rng->NextBernoulli(0.5) ? 0.99 : 1.29;
  return e;
}

SongEntity MakeSongSibling(const SongEntity& base, Rng* rng) {
  // A different track by the same artist: the fields differ in several
  // correlated ways (album, duration, year, price), as real hard negatives
  // from blocking do — matches are distinguished by agreeing on *most*
  // fields, not by a single adversarial token.
  SongEntity e = base;
  auto base_words = SplitWhitespace(base.song);
  std::vector<std::string> w;
  if (!base_words.empty() && rng->NextBernoulli(0.3)) {
    w.push_back(base_words[rng->NextUint64(base_words.size())]);
  }
  const int words = 2 + static_cast<int>(rng->NextUint64(2));
  while (static_cast<int>(w.size()) < words) {
    w.push_back(Pick(SongWordPool(), rng));
  }
  e.song = Join(w, " ");
  if (rng->NextBernoulli(0.7)) {
    e.album = Pick(SongWordPool(), rng) + " " + Pick(SongWordPool(), rng);
  }
  e.seconds = 150 + static_cast<int64_t>(rng->NextUint64(180));
  e.year = base.year + rng->NextInt(-3, 3);
  if (rng->NextBernoulli(0.5)) e.label = Pick(LabelPool(), rng);
  e.price = rng->NextBernoulli(0.5) ? 0.99 : 1.29;
  return e;
}

std::string FormatTime(int64_t seconds) {
  return StrFormat("%lld:%02lld", static_cast<long long>(seconds / 60),
                   static_cast<long long>(seconds % 60));
}

/// iTunes-Amazon schema: [song_name, artist_name, album_name, genre, price,
/// copyright, time, released].
Record ItunesRecord(const SongEntity& e, Rng* rng) {
  Record r;
  std::string song = e.song;
  if (rng->NextBernoulli(0.2)) song += " ( album version )";
  r.values.push_back(song);
  r.values.push_back(e.artist);
  r.values.push_back(e.album);
  r.values.push_back(e.genre);
  r.values.push_back(StrFormat("$ %.2f", e.price));
  r.values.push_back(StrFormat("%lld %s", static_cast<long long>(e.year),
                               e.label.c_str()));
  r.values.push_back(FormatTime(e.seconds));
  r.values.push_back(StrFormat("%lld", static_cast<long long>(e.year)));
  return r;
}

Record AmazonMusicRecord(const SongEntity& e, Rng* rng) {
  Record r;
  std::string song = e.song;
  if (rng->NextBernoulli(0.15)) song = TypoTokens(song, 0.3, rng);
  if (rng->NextBernoulli(0.25)) {
    song += " [ explicit ]";
  } else if (rng->NextBernoulli(0.2)) {
    song += " ( feat . " + Pick(FirstNamePool(), rng) + " )";
  }
  r.values.push_back(song);
  r.values.push_back(rng->NextBernoulli(0.3) ? AbbreviateName(e.artist)
                                             : e.artist);
  r.values.push_back(rng->NextBernoulli(0.15) ? "" : e.album);
  r.values.push_back(e.genre);
  r.values.push_back(StrFormat("$ %.2f", e.price));
  r.values.push_back(StrFormat("( c ) %lld %s",
                               static_cast<long long>(e.year), e.label.c_str()));
  // Amazon renders the duration verbosely ("3 min 42 sec" vs iTunes'
  // "3:42"): subword models still align the digits, whole-token and
  // per-attribute similarity features largely cannot.
  const int64_t secs = e.seconds + (rng->NextBernoulli(0.3)
                                        ? rng->NextInt(-1, 1)
                                        : 0);
  r.values.push_back(StrFormat("%lld min %lld sec",
                               static_cast<long long>(secs / 60),
                               static_cast<long long>(secs % 60)));
  r.values.push_back(StrFormat("%lld", static_cast<long long>(e.year)));
  return r;
}

// =====================================================================
// Citations (DBLP-ACM, DBLP-Scholar)
// =====================================================================

struct PaperEntity {
  std::string title;
  std::vector<std::string> authors;
  std::string venue_abbrev;
  std::string venue_full;
  int64_t year;
};

PaperEntity MakePaper(Rng* rng) {
  PaperEntity e;
  e.title = Pick(ResearchVerbPool(), rng) + " " + Pick(ResearchTopicPool(), rng) +
            " " + Pick(ResearchObjectPool(), rng);
  const int n_authors = 2 + static_cast<int>(rng->NextUint64(3));
  for (int i = 0; i < n_authors; ++i) {
    e.authors.push_back(Pick(FirstNamePool(), rng) + " " +
                        Pick(LastNamePool(), rng));
  }
  auto venue = Split(Pick(VenuePool(), rng), '|');
  e.venue_abbrev = venue[0];
  e.venue_full = venue[1];
  e.year = 1998 + static_cast<int64_t>(rng->NextUint64(22));
  return e;
}

PaperEntity MakePaperSibling(const PaperEntity& base, Rng* rng) {
  PaperEntity e = base;  // same group: shared authors, related title
  e.title = Pick(ResearchVerbPool(), rng) + " " +
            SplitWhitespace(base.title)[1] + " " +
            Pick(ResearchObjectPool(), rng);
  // Rebuild the title topic from the base so the hard negative shares
  // topic words; append a distinct object.
  const size_t keep = std::min<size_t>(base.authors.size(), 2);
  e.authors.assign(base.authors.begin(),
                   base.authors.begin() + static_cast<int64_t>(keep));
  e.authors.push_back(Pick(FirstNamePool(), rng) + " " +
                      Pick(LastNamePool(), rng));
  e.year = base.year + rng->NextInt(-2, 2);
  return e;
}

std::string AuthorsToString(const std::vector<std::string>& authors,
                            bool abbreviate, Rng* rng, double drop_p = 0.0) {
  std::vector<std::string> parts;
  for (const auto& a : authors) {
    if (drop_p > 0 && rng->NextBernoulli(drop_p)) continue;
    parts.push_back(abbreviate ? AbbreviateName(a) : a);
  }
  if (parts.empty() && !authors.empty()) parts.push_back(authors[0]);
  return Join(parts, " , ");
}

/// Citation schema: [title, authors, venue, year].
Record DblpRecord(const PaperEntity& e, Rng* rng) {
  Record r;
  r.values.push_back(e.title);
  r.values.push_back(AuthorsToString(e.authors, false, rng));
  r.values.push_back(e.venue_abbrev);
  r.values.push_back(StrFormat("%lld", static_cast<long long>(e.year)));
  return r;
}

Record AcmRecord(const PaperEntity& e, Rng* rng) {
  Record r;
  std::string title = e.title;
  if (rng->NextBernoulli(0.1)) title = TypoTokens(title, 0.1, rng);
  r.values.push_back(title);
  r.values.push_back(AuthorsToString(e.authors, rng->NextBernoulli(0.5), rng));
  r.values.push_back(e.venue_full);
  r.values.push_back(StrFormat("%lld", static_cast<long long>(e.year)));
  return r;
}

Record ScholarRecord(const PaperEntity& e, Rng* rng) {
  Record r;
  std::string title = e.title;
  if (rng->NextBernoulli(0.3)) title = DropTokens(title, 0.15, rng);
  if (rng->NextBernoulli(0.2)) title = TypoTokens(title, 0.1, rng);
  r.values.push_back(title);
  r.values.push_back(AuthorsToString(e.authors, true, rng, /*drop_p=*/0.25));
  r.values.push_back(rng->NextBernoulli(0.25)
                         ? ""
                         : (rng->NextBernoulli(0.5) ? e.venue_abbrev
                                                    : e.venue_full));
  const int64_t year = e.year + (rng->NextBernoulli(0.15)
                                     ? rng->NextInt(-1, 1)
                                     : 0);
  r.values.push_back(rng->NextBernoulli(0.1)
                         ? ""
                         : StrFormat("%lld", static_cast<long long>(year)));
  return r;
}

// =====================================================================
// Assembly
// =====================================================================

/// Builds the pair list for one dataset from per-domain callbacks:
/// `make_entity` creates a fresh entity, `make_sibling` a hard negative of
/// an existing one, and `render_a`/`render_b` produce the two views.
template <typename Entity>
std::vector<RecordPair> BuildPairs(
    int64_t n_pairs, int64_t n_matches, double hard_fraction, Rng* rng,
    const std::function<Entity(Rng*)>& make_entity,
    const std::function<Entity(const Entity&, Rng*)>& make_sibling,
    const std::function<Record(const Entity&, Rng*)>& render_a,
    const std::function<Record(const Entity&, Rng*)>& render_b) {
  std::vector<RecordPair> pairs;
  pairs.reserve(static_cast<size_t>(n_pairs));

  // Matches.
  std::vector<Entity> entities;
  for (int64_t i = 0; i < n_matches; ++i) {
    Entity e = make_entity(rng);
    RecordPair p;
    p.a = render_a(e, rng);
    p.b = render_b(e, rng);
    p.label = 1;
    pairs.push_back(std::move(p));
    entities.push_back(std::move(e));
  }

  // Negatives.
  const int64_t n_neg = n_pairs - n_matches;
  for (int64_t i = 0; i < n_neg; ++i) {
    RecordPair p;
    p.label = 0;
    if (!entities.empty() && rng->NextBernoulli(hard_fraction)) {
      // Hard negative: sibling of a matched entity on the B side.
      const Entity& base = entities[rng->NextUint64(entities.size())];
      Entity sib = make_sibling(base, rng);
      p.a = render_a(base, rng);
      p.b = render_b(sib, rng);
    } else {
      // Random negative: two unrelated entities.
      Entity e1 = make_entity(rng);
      Entity e2 = make_entity(rng);
      p.a = render_a(e1, rng);
      p.b = render_b(e2, rng);
    }
    pairs.push_back(std::move(p));
  }
  return pairs;
}

}  // namespace

Catalog GenerateCatalog(const CatalogSpec& spec) {
  Catalog cat;
  cat.schema.attributes = {"title", "category", "brand", "modelno", "price"};

  const int64_t n = std::max<int64_t>(1, spec.num_records);
  const int64_t n_queries =
      std::min(std::max<int64_t>(0, spec.num_queries), n);
  // Truth records sit at multiples of `stride`; siblings fill the slots
  // right after each truth record, so they never collide with the next
  // truth position.
  const int64_t stride = n_queries > 0 ? n / n_queries : n;
  const int64_t siblings = std::min(std::max<int64_t>(0, spec.siblings_per_query),
                                    std::max<int64_t>(0, stride - 1));

  cat.records.reserve(static_cast<size_t>(n));
  cat.queries.reserve(static_cast<size_t>(n_queries));
  cat.truth.reserve(static_cast<size_t>(n_queries));

  Rng rng(spec.seed ^ 0xc2b2ae3d27d4eb4fULL);
  ProductEntity truth_entity;
  int64_t sibling_slots = 0;
  for (int64_t i = 0; i < n; ++i) {
    const bool is_truth = stride > 0 && i % stride == 0 &&
                          static_cast<int64_t>(cat.queries.size()) < n_queries;
    if (is_truth) {
      truth_entity = MakeProduct(&rng);
      cat.records.push_back(
          SerializeRecord(cat.schema, AmazonRecord(truth_entity, &rng)));
      cat.queries.push_back(
          SerializeRecord(cat.schema, WalmartRecord(truth_entity, &rng)));
      cat.truth.push_back(i);
      sibling_slots = siblings;
    } else if (sibling_slots > 0) {
      --sibling_slots;
      cat.records.push_back(SerializeRecord(
          cat.schema, AmazonRecord(MakeProductSibling(truth_entity, &rng), &rng)));
    } else {
      cat.records.push_back(
          SerializeRecord(cat.schema, AmazonRecord(MakeProduct(&rng), &rng)));
    }
  }
  return cat;
}

void ApplyDirtyTransform(Record* record, int64_t title_index, double p,
                         Rng* rng) {
  for (size_t i = 0; i < record->values.size(); ++i) {
    if (static_cast<int64_t>(i) == title_index) continue;
    if (record->values[i].empty()) continue;
    if (rng->NextBernoulli(p)) {
      std::string& title = record->values[static_cast<size_t>(title_index)];
      if (!title.empty()) title += " ";
      title += record->values[i];
      record->values[i].clear();
    }
  }
}

EmDataset GenerateDataset(DatasetId id, const GeneratorOptions& options) {
  const DatasetSpec& spec = SpecFor(id);
  EmDataset ds;
  ds.id = id;
  ds.name = spec.name;

  const int64_t n_pairs = std::max<int64_t>(
      10, static_cast<int64_t>(std::llround(spec.size * options.scale)));
  const int64_t n_matches = std::max<int64_t>(
      3, static_cast<int64_t>(std::llround(spec.num_matches * options.scale)));

  Rng rng(options.seed ^ (static_cast<uint64_t>(id) * 0x9e3779b97f4a7c15ULL));
  std::vector<RecordPair> pairs;

  switch (id) {
    case DatasetId::kAbtBuy: {
      ds.schema.attributes = {"name", "description", "price"};
      ds.serialize_only_attribute = 1;  // paper: only the noisy description
      pairs = BuildPairs<ProductEntity>(
          n_pairs, n_matches, options.hard_negative_fraction, &rng,
          MakeProduct, MakeProductSibling, AbtBuyRecordA, AbtBuyRecordB);
      break;
    }
    case DatasetId::kWalmartAmazon: {
      ds.schema.attributes = {"title", "category", "brand", "modelno", "price"};
      pairs = BuildPairs<ProductEntity>(
          n_pairs, n_matches, options.hard_negative_fraction, &rng,
          MakeProduct, MakeProductSibling, WalmartRecord, AmazonRecord);
      break;
    }
    case DatasetId::kItunesAmazon: {
      ds.schema.attributes = {"song_name", "artist_name", "album_name",
                              "genre",     "price",       "copyright",
                              "time",      "released"};
      pairs = BuildPairs<SongEntity>(
          n_pairs, n_matches, options.hard_negative_fraction, &rng, MakeSong,
          MakeSongSibling, ItunesRecord, AmazonMusicRecord);
      break;
    }
    case DatasetId::kDblpAcm: {
      ds.schema.attributes = {"title", "authors", "venue", "year"};
      pairs = BuildPairs<PaperEntity>(
          n_pairs, n_matches, options.hard_negative_fraction, &rng, MakePaper,
          MakePaperSibling, DblpRecord, AcmRecord);
      break;
    }
    case DatasetId::kDblpScholar: {
      ds.schema.attributes = {"title", "authors", "venue", "year"};
      pairs = BuildPairs<PaperEntity>(
          n_pairs, n_matches, options.hard_negative_fraction, &rng, MakePaper,
          MakePaperSibling, DblpRecord, ScholarRecord);
      break;
    }
  }

  // The paper's dirty transform on the four structured datasets.
  if (spec.dirty && options.apply_dirty) {
    for (auto& p : pairs) {
      ApplyDirtyTransform(&p.a, /*title_index=*/0, 0.5, &rng);
      ApplyDirtyTransform(&p.b, /*title_index=*/0, 0.5, &rng);
    }
  }

  SplitPairs(std::move(pairs), options.seed + 1, &ds.train, &ds.valid,
             &ds.test);
  return ds;
}

}  // namespace data
}  // namespace emx
