#ifndef EMX_DATA_GENERATORS_H_
#define EMX_DATA_GENERATORS_H_

#include <cstdint>

#include "data/record.h"
#include "util/rng.h"

namespace emx {
namespace data {

/// Options controlling dataset synthesis.
struct GeneratorOptions {
  /// Master seed; the same seed always yields the identical dataset.
  uint64_t seed = 20200330;
  /// Fraction of the paper's Table 3 size to generate (1.0 = full size).
  /// Benches use smaller scales to keep CPU fine-tuning tractable; the
  /// pair difficulty distribution is scale-invariant.
  double scale = 1.0;
  /// Applies the paper's dirty transform (each non-title value moved into
  /// the title with p = 0.5) on the four structured datasets. Exposed so
  /// the ablation bench can measure its effect.
  bool apply_dirty = true;
  /// Fraction of negative pairs drawn from the same entity family
  /// (hard negatives sharing brand/artist/topic).
  double hard_negative_fraction = 0.6;
};

/// Generates one of the paper's five datasets (synthetic stand-ins with
/// the same schema, size, match count, and difficulty ordering — see
/// DESIGN.md for the substitution rationale).
EmDataset GenerateDataset(DatasetId id, const GeneratorOptions& options);

/// Knobs for catalog synthesis (the 1-vs-millions retrieval corpus).
struct CatalogSpec {
  /// Master seed; the same spec always yields the identical catalog.
  uint64_t seed = 20200330;
  /// Catalog records (Amazon-style view of the Walmart-Amazon schema).
  int64_t num_records = 100000;
  /// Query records (Walmart-style view). Query q's true match sits at
  /// catalog id truth[q]; truth positions are spread evenly so shard
  /// assignment is exercised uniformly.
  int64_t num_queries = 100;
  /// Hard distractors: siblings of each query's entity (same brand/series
  /// family, different model) placed right after its truth record. These
  /// are what make retrieval non-trivial — token overlap alone cannot
  /// separate them; the idf-weighted model number has to.
  int64_t siblings_per_query = 3;
};

/// A generated retrieval corpus: serialized catalog records, serialized
/// queries, and the ground-truth catalog id of each query's match.
struct Catalog {
  Schema schema;
  std::vector<std::string> records;
  std::vector<std::string> queries;
  /// truth[q] = id (position in `records`) of query q's true match.
  std::vector<int64_t> truth;
};

/// Generates a product catalog for the retrieval tier: each query is the
/// Walmart-style rendering of an entity whose Amazon-style rendering is in
/// the catalog, surrounded by hard sibling distractors; every other record
/// is an unrelated product. Deterministic in `spec`.
Catalog GenerateCatalog(const CatalogSpec& spec);

/// The paper's dirty transform (Section 5.1 / DeepMatcher): for each
/// attribute other than `title_index`, with probability p the value moves
/// to the title attribute of the same tuple (appended) and the source
/// becomes empty. Applied to each record independently.
void ApplyDirtyTransform(Record* record, int64_t title_index, double p,
                         Rng* rng);

}  // namespace data
}  // namespace emx

#endif  // EMX_DATA_GENERATORS_H_
