#ifndef EMX_DATA_GENERATORS_H_
#define EMX_DATA_GENERATORS_H_

#include <cstdint>

#include "data/record.h"
#include "util/rng.h"

namespace emx {
namespace data {

/// Options controlling dataset synthesis.
struct GeneratorOptions {
  /// Master seed; the same seed always yields the identical dataset.
  uint64_t seed = 20200330;
  /// Fraction of the paper's Table 3 size to generate (1.0 = full size).
  /// Benches use smaller scales to keep CPU fine-tuning tractable; the
  /// pair difficulty distribution is scale-invariant.
  double scale = 1.0;
  /// Applies the paper's dirty transform (each non-title value moved into
  /// the title with p = 0.5) on the four structured datasets. Exposed so
  /// the ablation bench can measure its effect.
  bool apply_dirty = true;
  /// Fraction of negative pairs drawn from the same entity family
  /// (hard negatives sharing brand/artist/topic).
  double hard_negative_fraction = 0.6;
};

/// Generates one of the paper's five datasets (synthetic stand-ins with
/// the same schema, size, match count, and difficulty ordering — see
/// DESIGN.md for the substitution rationale).
EmDataset GenerateDataset(DatasetId id, const GeneratorOptions& options);

/// The paper's dirty transform (Section 5.1 / DeepMatcher): for each
/// attribute other than `title_index`, with probability p the value moves
/// to the title attribute of the same tuple (appended) and the source
/// becomes empty. Applied to each record independently.
void ApplyDirtyTransform(Record* record, int64_t title_index, double p,
                         Rng* rng);

}  // namespace data
}  // namespace emx

#endif  // EMX_DATA_GENERATORS_H_
