#ifndef EMX_DATA_RECORD_H_
#define EMX_DATA_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace emx {
namespace data {

/// Ordered attribute names shared by all records of a table.
struct Schema {
  std::vector<std::string> attributes;

  int64_t size() const { return static_cast<int64_t>(attributes.size()); }
  /// Index of `name` or -1.
  int64_t Index(const std::string& name) const;
};

/// One data instance: attribute values aligned with a Schema. Missing
/// values are empty strings.
struct Record {
  std::vector<std::string> values;

  const std::string& value(int64_t i) const { return values[static_cast<size_t>(i)]; }
};

/// A labeled candidate pair: two records (one from each source) plus the
/// ground-truth match label.
struct RecordPair {
  Record a;
  Record b;
  int64_t label = 0;  // 1 = same real-world entity
};

/// Serializes a record into the single text blob fed to a transformer:
/// all attribute values concatenated in schema order (the paper's "[name +
/// brand + description + price]"), skipping empty values. When
/// `only_attribute` >= 0, only that attribute is used (Abt-Buy uses only
/// the noisy `description`).
std::string SerializeRecord(const Schema& schema, const Record& record,
                            int64_t only_attribute = -1);

/// Identifiers for the paper's five evaluation datasets (Table 3).
enum class DatasetId {
  kAbtBuy,
  kItunesAmazon,
  kWalmartAmazon,
  kDblpAcm,
  kDblpScholar,
};

/// Static description of one dataset: the paper's Table 3 row.
struct DatasetSpec {
  DatasetId id;
  const char* name;
  const char* domain;
  int64_t size;        // labeled candidate pairs
  int64_t num_matches; // positive pairs
  int64_t num_attrs;
  bool textual;        // Abt-Buy: single long text attribute
  bool dirty;          // the other four use the dirty transform
};

/// All five specs in the paper's order.
const std::vector<DatasetSpec>& AllDatasetSpecs();

/// Spec for one dataset.
const DatasetSpec& SpecFor(DatasetId id);

/// A fully materialized EM dataset with the paper's 3:1:1 split.
struct EmDataset {
  DatasetId id;
  std::string name;
  Schema schema;
  /// Index of the attribute transformers should serialize exclusively
  /// (-1 = all attributes). Abt-Buy sets this to its description column.
  int64_t serialize_only_attribute = -1;
  std::vector<RecordPair> train;
  std::vector<RecordPair> valid;
  std::vector<RecordPair> test;

  int64_t TotalPairs() const {
    return static_cast<int64_t>(train.size() + valid.size() + test.size());
  }
  int64_t TotalMatches() const;

  /// Serialized view of one side of a pair, honoring
  /// serialize_only_attribute.
  std::string SerializeA(const RecordPair& pair) const {
    return SerializeRecord(schema, pair.a, serialize_only_attribute);
  }
  std::string SerializeB(const RecordPair& pair) const {
    return SerializeRecord(schema, pair.b, serialize_only_attribute);
  }
};

/// Splits `pairs` into 3:1:1 train/valid/test deterministically (shuffled
/// with `seed`), preserving the overall match ratio approximately.
void SplitPairs(std::vector<RecordPair> pairs, uint64_t seed,
                std::vector<RecordPair>* train, std::vector<RecordPair>* valid,
                std::vector<RecordPair>* test);

}  // namespace data
}  // namespace emx

#endif  // EMX_DATA_RECORD_H_
