#include "data/record.h"

#include "util/logging.h"
#include "util/rng.h"

namespace emx {
namespace data {

int64_t Schema::Index(const std::string& name) const {
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i] == name) return static_cast<int64_t>(i);
  }
  return -1;
}

std::string SerializeRecord(const Schema& schema, const Record& record,
                            int64_t only_attribute) {
  EMX_CHECK_EQ(schema.size(), static_cast<int64_t>(record.values.size()));
  std::string out;
  if (only_attribute >= 0) {
    EMX_CHECK_LT(only_attribute, schema.size());
    return record.value(only_attribute);
  }
  for (int64_t i = 0; i < schema.size(); ++i) {
    const std::string& v = record.value(i);
    if (v.empty()) continue;
    if (!out.empty()) out += " ";
    out += v;
  }
  return out;
}

const std::vector<DatasetSpec>& AllDatasetSpecs() {
  // Table 3 of the paper.
  static const std::vector<DatasetSpec>* specs = new std::vector<DatasetSpec>{
      {DatasetId::kAbtBuy, "Abt-Buy", "Products", 9575, 1028, 3, true, false},
      {DatasetId::kItunesAmazon, "iTunes-Amazon", "Music", 539, 132, 8, false,
       true},
      {DatasetId::kWalmartAmazon, "Walmart-Amazon", "Products", 10242, 962, 5,
       false, true},
      {DatasetId::kDblpAcm, "DBLP-ACM", "Citation", 12363, 2220, 4, false,
       true},
      {DatasetId::kDblpScholar, "DBLP-Scholar", "Citation", 28707, 5347, 4,
       false, true},
  };
  return *specs;
}

const DatasetSpec& SpecFor(DatasetId id) {
  for (const auto& spec : AllDatasetSpecs()) {
    if (spec.id == id) return spec;
  }
  EMX_CHECK(false) << "unknown dataset id";
  return AllDatasetSpecs()[0];
}

int64_t EmDataset::TotalMatches() const {
  int64_t n = 0;
  for (const auto& p : train) n += p.label;
  for (const auto& p : valid) n += p.label;
  for (const auto& p : test) n += p.label;
  return n;
}

void SplitPairs(std::vector<RecordPair> pairs, uint64_t seed,
                std::vector<RecordPair>* train, std::vector<RecordPair>* valid,
                std::vector<RecordPair>* test) {
  Rng rng(seed);
  rng.Shuffle(&pairs);
  // 3:1:1 split as in the paper (60% / 20% / 20%).
  const size_t n = pairs.size();
  const size_t n_train = n * 3 / 5;
  const size_t n_valid = n / 5;
  train->assign(pairs.begin(), pairs.begin() + static_cast<int64_t>(n_train));
  valid->assign(pairs.begin() + static_cast<int64_t>(n_train),
                pairs.begin() + static_cast<int64_t>(n_train + n_valid));
  test->assign(pairs.begin() + static_cast<int64_t>(n_train + n_valid),
               pairs.end());
}

}  // namespace data
}  // namespace emx
