#include "data/dataset_io.h"

#include <filesystem>

#include "util/csv.h"
#include "util/string_util.h"

namespace emx {
namespace data {
namespace {

constexpr const char* kMetadataFile = "metadata.csv";

CsvTable PairsToCsv(const Schema& schema,
                    const std::vector<RecordPair>& pairs) {
  CsvTable table;
  table.header.push_back("label");
  for (const auto& a : schema.attributes) table.header.push_back("left_" + a);
  for (const auto& a : schema.attributes) table.header.push_back("right_" + a);
  for (const auto& p : pairs) {
    std::vector<std::string> row;
    row.push_back(std::to_string(p.label));
    for (const auto& v : p.a.values) row.push_back(v);
    for (const auto& v : p.b.values) row.push_back(v);
    table.rows.push_back(std::move(row));
  }
  return table;
}

Result<std::vector<RecordPair>> CsvToPairs(const CsvTable& table,
                                           int64_t num_attrs) {
  if (static_cast<int64_t>(table.header.size()) != 1 + 2 * num_attrs) {
    return Status::InvalidArgument("pair CSV width does not match schema");
  }
  std::vector<RecordPair> pairs;
  pairs.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    RecordPair p;
    int64_t label = 0;
    if (!ParseInt(row[0], &label) || (label != 0 && label != 1)) {
      return Status::InvalidArgument("bad label '" + row[0] + "'");
    }
    p.label = label;
    for (int64_t i = 0; i < num_attrs; ++i) {
      p.a.values.push_back(row[static_cast<size_t>(1 + i)]);
    }
    for (int64_t i = 0; i < num_attrs; ++i) {
      p.b.values.push_back(row[static_cast<size_t>(1 + num_attrs + i)]);
    }
    pairs.push_back(std::move(p));
  }
  return pairs;
}

}  // namespace

Status SaveDataset(const EmDataset& dataset, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) return Status::IoError("cannot create directory " + directory);

  CsvTable meta;
  meta.header = {"name", "dataset_id", "serialize_only_attribute"};
  meta.rows.push_back({dataset.name,
                       std::to_string(static_cast<int>(dataset.id)),
                       std::to_string(dataset.serialize_only_attribute)});
  EMX_RETURN_IF_ERROR(WriteCsv(directory + "/" + kMetadataFile, meta));

  EMX_RETURN_IF_ERROR(WriteCsv(directory + "/train.csv",
                               PairsToCsv(dataset.schema, dataset.train)));
  EMX_RETURN_IF_ERROR(WriteCsv(directory + "/valid.csv",
                               PairsToCsv(dataset.schema, dataset.valid)));
  EMX_RETURN_IF_ERROR(WriteCsv(directory + "/test.csv",
                               PairsToCsv(dataset.schema, dataset.test)));
  return Status::OK();
}

Result<EmDataset> LoadDataset(const std::string& directory) {
  EMX_ASSIGN_OR_RETURN(CsvTable meta,
                       ReadCsv(directory + "/" + kMetadataFile));
  if (meta.rows.size() != 1 || meta.header.size() < 3) {
    return Status::InvalidArgument("bad metadata file in " + directory);
  }
  EmDataset ds;
  ds.name = meta.rows[0][0];
  int64_t id = 0;
  int64_t only_attr = -1;
  if (!ParseInt(meta.rows[0][1], &id) || !ParseInt(meta.rows[0][2], &only_attr)) {
    return Status::InvalidArgument("bad metadata values in " + directory);
  }
  ds.id = static_cast<DatasetId>(id);
  ds.serialize_only_attribute = only_attr;

  EMX_ASSIGN_OR_RETURN(CsvTable train_csv, ReadCsv(directory + "/train.csv"));
  // Reconstruct the schema from left_ columns.
  for (const auto& col : train_csv.header) {
    if (StartsWith(col, "left_")) {
      ds.schema.attributes.push_back(col.substr(5));
    }
  }
  if (ds.schema.attributes.empty()) {
    return Status::InvalidArgument("no left_ columns in " + directory);
  }
  const int64_t k = ds.schema.size();
  EMX_ASSIGN_OR_RETURN(ds.train, CsvToPairs(train_csv, k));
  EMX_ASSIGN_OR_RETURN(CsvTable valid_csv, ReadCsv(directory + "/valid.csv"));
  EMX_ASSIGN_OR_RETURN(ds.valid, CsvToPairs(valid_csv, k));
  EMX_ASSIGN_OR_RETURN(CsvTable test_csv, ReadCsv(directory + "/test.csv"));
  EMX_ASSIGN_OR_RETURN(ds.test, CsvToPairs(test_csv, k));
  return ds;
}

}  // namespace data
}  // namespace emx
