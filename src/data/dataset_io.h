#ifndef EMX_DATA_DATASET_IO_H_
#define EMX_DATA_DATASET_IO_H_

#include <string>

#include "data/record.h"
#include "util/status.h"

namespace emx {
namespace data {

/// Persists an EmDataset as three CSV files (train/valid/test) in the
/// Magellan pair format: for a schema {a1, ..., ak} the header is
///   label, left_a1, ..., left_ak, right_a1, ..., right_ak
/// plus a small metadata file recording the dataset name and the
/// serialize-only attribute. Lets users inspect the generated data, edit
/// it, or feed their own labeled pairs into the matchers.
///
/// Files written under `directory`:
///   metadata.csv  train.csv  valid.csv  test.csv
Status SaveDataset(const EmDataset& dataset, const std::string& directory);

/// Loads a dataset written by SaveDataset (or hand-authored in the same
/// format). The schema is reconstructed from the header's left_ columns.
Result<EmDataset> LoadDataset(const std::string& directory);

}  // namespace data
}  // namespace emx

#endif  // EMX_DATA_DATASET_IO_H_
