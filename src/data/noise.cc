#include "data/noise.h"

#include "util/string_util.h"

namespace emx {
namespace data {

std::string Typo(const std::string& word, Rng* rng) {
  if (word.size() < 3) return word;
  std::string out = word;
  const size_t pos = 1 + rng->NextUint64(out.size() - 2);
  switch (rng->NextUint64(3)) {
    case 0:  // swap adjacent
      std::swap(out[pos], out[pos - 1]);
      break;
    case 1:  // drop
      out.erase(pos, 1);
      break;
    default:  // duplicate
      out.insert(pos, 1, out[pos]);
      break;
  }
  return out;
}

std::string AbbreviateName(const std::string& full_name) {
  auto parts = SplitWhitespace(full_name);
  if (parts.size() < 2) return full_name;
  std::string out;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    out += parts[i].substr(0, 1) + ".";
    out += " ";
  }
  out += parts.back();
  return out;
}

std::string DropTokens(const std::string& text, double p, Rng* rng) {
  auto tokens = SplitWhitespace(text);
  if (tokens.empty()) return text;
  std::vector<std::string> kept;
  for (auto& t : tokens) {
    if (!rng->NextBernoulli(p)) kept.push_back(t);
  }
  if (kept.empty()) kept.push_back(tokens[rng->NextUint64(tokens.size())]);
  return Join(kept, " ");
}

std::string ShuffleTokensLightly(const std::string& text, Rng* rng) {
  auto tokens = SplitWhitespace(text);
  if (tokens.size() < 3) return text;
  const size_t swaps = 1 + rng->NextUint64(2);
  for (size_t s = 0; s < swaps; ++s) {
    const size_t i = rng->NextUint64(tokens.size() - 1);
    std::swap(tokens[i], tokens[i + 1]);
  }
  return Join(tokens, " ");
}

std::string TypoTokens(const std::string& text, double p, Rng* rng) {
  auto tokens = SplitWhitespace(text);
  for (auto& t : tokens) {
    if (rng->NextBernoulli(p)) t = Typo(t, rng);
  }
  return Join(tokens, " ");
}

std::string PerturbPrice(double price, double fraction, Rng* rng) {
  const double factor = 1.0 + (rng->NextDouble() * 2.0 - 1.0) * fraction;
  return StrFormat("%.2f", price * factor);
}

std::string RandomModelNumber(Rng* rng) {
  std::string out;
  const size_t letters = 1 + rng->NextUint64(2);
  for (size_t i = 0; i < letters; ++i) {
    out.push_back(static_cast<char>('a' + rng->NextUint64(26)));
  }
  const size_t digits = 3 + rng->NextUint64(2);
  for (size_t i = 0; i < digits; ++i) {
    out.push_back(static_cast<char>('0' + rng->NextUint64(10)));
  }
  if (rng->NextBernoulli(0.4)) {
    out.push_back(static_cast<char>('a' + rng->NextUint64(26)));
    if (rng->NextBernoulli(0.5)) {
      out.push_back(static_cast<char>('a' + rng->NextUint64(26)));
    }
  }
  return out;
}

std::string SimilarModelNumber(const std::string& model, Rng* rng) {
  std::string out = model;
  const size_t edits = 1 + rng->NextUint64(2);
  for (size_t e = 0; e < edits; ++e) {
    if (out.empty()) break;
    const size_t pos = rng->NextUint64(out.size());
    char& c = out[pos];
    if (c >= '0' && c <= '9') {
      c = static_cast<char>('0' + (c - '0' + 1 + rng->NextUint64(8)) % 10);
    } else {
      c = static_cast<char>('a' + (c - 'a' + 1 + rng->NextUint64(24)) % 26);
    }
  }
  if (out == model) out.push_back('x');
  return out;
}

}  // namespace data
}  // namespace emx
