#ifndef EMX_DATA_BLOCKING_H_
#define EMX_DATA_BLOCKING_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "data/record.h"

namespace emx {
namespace data {

/// Candidate generation ("blocking") — the step of the EM pipeline that
/// precedes pair classification (Christen 2012, Konda et al. 2016): instead
/// of scoring all |A| x |B| pairs, an inverted token index proposes only
/// pairs that share enough rare tokens. The matchers in this library then
/// classify the surviving candidates.
struct BlockerOptions {
  /// Minimum number of shared index tokens for a pair to become a
  /// candidate.
  int64_t min_shared_tokens = 2;
  /// Tokens appearing in more than this fraction of records are too common
  /// to block on (stop-word style cutoff).
  double max_token_frequency = 0.25;
  /// Upper bound on candidates returned per left record (best-first by
  /// shared-token count; 0 = unlimited).
  int64_t max_candidates_per_record = 20;
};

/// Token-overlap blocker over two record collections with a shared schema.
class TokenBlocker {
 public:
  explicit TokenBlocker(BlockerOptions options = BlockerOptions{})
      : options_(options) {}

  /// Indexes the right-hand collection. Serialization uses all attributes
  /// (or `only_attribute` when >= 0, matching EmDataset semantics).
  void IndexRight(const Schema& schema, const std::vector<Record>& right,
                  int64_t only_attribute = -1);

  /// Candidate (left_index, right_index) pairs for the given left records,
  /// sorted by decreasing shared-token count within each left record.
  std::vector<std::pair<int64_t, int64_t>> Candidates(
      const Schema& schema, const std::vector<Record>& left,
      int64_t only_attribute = -1) const;

  /// Standard reduction ratio (Christen 2012): the fraction of the full
  /// cross product that blocking *eliminated*,
  ///   1 - |candidates| / (|left| * |right|).
  /// Higher is better; 1.0 means everything was pruned. An empty cross
  /// product returns 0 (there was nothing to reduce). Note: before the
  /// retrieval-tier PR this function returned the complement (the survived
  /// fraction), which is now SurvivedFraction().
  static double ReductionRatio(int64_t num_candidates, int64_t num_left,
                               int64_t num_right);

  /// Fraction of the full cross product that survived blocking:
  /// |candidates| / (|left| * |right|). Lower is better. Complement of
  /// ReductionRatio over a non-empty cross product.
  static double SurvivedFraction(int64_t num_candidates, int64_t num_left,
                                 int64_t num_right);

  int64_t indexed_size() const { return num_right_; }
  /// Distinct tokens currently in the inverted index (post df-cutoff).
  int64_t num_index_tokens() const {
    return static_cast<int64_t>(inverted_.size());
  }
  /// Distinct tokens with a tracked document frequency. Equal to
  /// num_index_tokens() after IndexRight — pruned tokens drop their df
  /// entry too (they used to leak, which is unbounded waste at catalog
  /// scale).
  int64_t num_tracked_tokens() const {
    return static_cast<int64_t>(token_df_.size());
  }

 private:
  std::vector<std::string> IndexTokens(const Schema& schema, const Record& r,
                                       int64_t only_attribute) const;

  BlockerOptions options_;
  int64_t num_right_ = 0;
  std::unordered_map<std::string, std::vector<int64_t>> inverted_;
  /// Document frequency per token over the indexed collection.
  std::unordered_map<std::string, int64_t> token_df_;
};

}  // namespace data
}  // namespace emx

#endif  // EMX_DATA_BLOCKING_H_
