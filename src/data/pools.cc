#include "data/pools.h"

namespace emx {
namespace data {
namespace {

// Function-local static pointers (never destroyed) per the style guide's
// static-storage-duration rules.
const std::vector<std::string>* Make(std::initializer_list<const char*> items) {
  auto* v = new std::vector<std::string>();
  for (const char* s : items) v->push_back(s);
  return v;
}

}  // namespace

const std::vector<std::string>& BrandPool() {
  static const auto* pool = Make(
      {"apple",   "asus",    "nokia",   "samsung", "sony",    "dell",
       "lenovo",  "canon",   "nikon",   "garmin",  "philips", "panasonic",
       "toshiba", "logitech", "netgear", "belkin",  "sandisk", "kingston",
       "epson",   "brother", "sharp",   "haier",   "vizio",   "jvc",
       "pioneer", "kenwood", "olympus", "casio",   "fujitsu", "acer"});
  return *pool;
}

const std::vector<std::string>& ProductTypePool() {
  static const auto* pool = Make(
      {"phone",     "laptop",    "camera",   "tablet",   "monitor",
       "printer",   "router",    "headphones", "speaker", "keyboard",
       "mouse",     "projector", "scanner",  "television", "camcorder",
       "receiver",  "subwoofer", "microwave", "refrigerator", "dishwasher",
       "vacuum",    "blender",   "toaster",  "dryer",    "washer"});
  return *pool;
}

const std::vector<std::string>& AdjectivePool() {
  static const auto* pool = Make(
      {"wireless",  "portable",  "compact",  "professional", "digital",
       "smart",     "ultra",     "premium",  "lightweight",  "rugged",
       "advanced",  "efficient", "powerful", "sleek",        "versatile",
       "durable",   "ergonomic", "quiet",    "fast",         "reliable",
       "expansive", "brilliant", "stunning", "incredible",   "robust"});
  return *pool;
}

const std::vector<std::string>& FeaturePool() {
  static const auto* pool = Make(
      {"bluetooth connectivity", "hd display",        "long battery life",
       "touch screen",           "fast charging",     "noise cancellation",
       "surround sound",         "optical zoom",      "image stabilization",
       "dual band wifi",         "backlit keys",      "usb charging port",
       "voice control",          "energy efficient design",
       "water resistant body",   "expandable memory", "stereo speakers",
       "remote control",         "automatic shutoff", "led indicators"});
  return *pool;
}

const std::vector<std::string>& ColorPool() {
  static const auto* pool = Make({"black", "white", "silver", "red", "blue",
                                  "gray", "gold", "green"});
  return *pool;
}

const std::vector<std::string>& FillerPhrasePool() {
  static const auto* pool = Make(
      {"perfect for everyday use",
       "a great gift for the holidays",
       "backed by a one year warranty",
       "designed with the user in mind",
       "now available at a decent price",
       "the ideal companion for work and play",
       "trusted by professionals worldwide",
       "you will love it from day one",
       "engineered for performance and comfort",
       "an excellent choice for home or office",
       "built to last with quality materials",
       "easy to set up and simple to use"});
  return *pool;
}

const std::vector<std::string>& CategoryPool() {
  static const auto* pool = Make(
      {"electronics", "computers", "home audio", "appliances", "photography",
       "office equipment", "networking", "accessories", "kitchen", "mobile"});
  return *pool;
}

const std::vector<std::string>& FirstNamePool() {
  static const auto* pool = Make(
      {"james",  "mary",    "robert", "linda",  "michael", "susan",
       "david",  "karen",   "thomas", "lisa",   "daniel",  "nancy",
       "carlos", "wei",     "yuki",   "anna",   "peter",   "elena",
       "rajiv",  "fatima",  "lars",   "ingrid", "paulo",   "chen",
       "marco",  "sofia",   "ahmed",  "julia",  "viktor",  "amara"});
  return *pool;
}

const std::vector<std::string>& LastNamePool() {
  static const auto* pool = Make(
      {"smith",   "johnson",  "williams", "brown",   "jones",    "garcia",
       "miller",  "davis",    "martinez", "lopez",   "wilson",   "anderson",
       "taylor",  "thomas",   "moore",    "jackson", "lee",      "chen",
       "wang",    "kumar",    "singh",    "tanaka",  "mueller",  "schmidt",
       "rossi",   "ferrari",  "novak",    "petrov",  "andersson", "okafor"});
  return *pool;
}

const std::vector<std::string>& SongWordPool() {
  static const auto* pool = Make(
      {"love",    "night",  "heart",  "fire",   "dream",  "summer",
       "dance",   "light",  "river",  "moon",   "golden", "midnight",
       "forever", "crazy",  "wild",   "blue",   "rain",   "shadow",
       "electric", "broken", "sweet",  "lonely", "silver", "thunder",
       "ocean",   "city",   "highway", "angel",  "diamond", "echo"});
  return *pool;
}

const std::vector<std::string>& GenrePool() {
  static const auto* pool = Make({"pop", "rock", "jazz", "country", "hip hop",
                                  "electronic", "folk", "blues", "classical",
                                  "reggae"});
  return *pool;
}

const std::vector<std::string>& LabelPool() {
  static const auto* pool = Make(
      {"sunrise records", "bluebird music", "northern lights audio",
       "harbor lane records", "velvet sound", "crescent city music",
       "redwood recordings", "silverline studios"});
  return *pool;
}

const std::vector<std::string>& ResearchTopicPool() {
  static const auto* pool = Make(
      {"query optimization",       "entity matching",
       "data integration",         "transaction processing",
       "index structures",         "stream processing",
       "distributed databases",    "schema mapping",
       "data cleaning",            "approximate query answering",
       "graph databases",          "columnar storage",
       "concurrency control",      "materialized views",
       "similarity joins",         "record linkage",
       "workload forecasting",     "adaptive indexing",
       "spatial databases",        "temporal data management",
       "data provenance",          "crowdsourced data curation",
       "main memory databases",    "secure data outsourcing"});
  return *pool;
}

const std::vector<std::string>& ResearchVerbPool() {
  static const auto* pool = Make(
      {"towards", "rethinking", "optimizing", "scaling", "accelerating",
       "evaluating", "automating", "improving", "revisiting", "profiling",
       "a survey of", "a study of", "benchmarking", "learning"});
  return *pool;
}

const std::vector<std::string>& ResearchObjectPool() {
  static const auto* pool = Make(
      {"in the cloud",          "for modern hardware",
       "at scale",              "with machine learning",
       "on multicore systems",  "under skewed workloads",
       "for heterogeneous data", "with limited memory",
       "in practice",           "using deep models",
       "over encrypted data",   "for real time analytics"});
  return *pool;
}

const std::vector<std::string>& VenuePool() {
  static const auto* pool = Make(
      {"sigmod|international conference on management of data",
       "vldb|very large data bases",
       "icde|international conference on data engineering",
       "edbt|extending database technology",
       "cidr|conference on innovative data systems research",
       "kdd|knowledge discovery and data mining",
       "cikm|conference on information and knowledge management",
       "sigir|research and development in information retrieval"});
  return *pool;
}

}  // namespace data
}  // namespace emx
