#ifndef EMX_DATA_POOLS_H_
#define EMX_DATA_POOLS_H_

#include <string>
#include <vector>

namespace emx {
namespace data {

// Word pools shared by the dataset generators and the pre-training corpus
// generator. Keeping them in one place guarantees the synthetic
// pre-training corpus covers the fine-tuning domain vocabulary, exactly as
// the paper's models were pre-trained on text covering everyday English.

const std::vector<std::string>& BrandPool();
const std::vector<std::string>& ProductTypePool();
const std::vector<std::string>& AdjectivePool();
const std::vector<std::string>& FeaturePool();
const std::vector<std::string>& ColorPool();
const std::vector<std::string>& FillerPhrasePool();
const std::vector<std::string>& CategoryPool();

const std::vector<std::string>& FirstNamePool();
const std::vector<std::string>& LastNamePool();

const std::vector<std::string>& SongWordPool();
const std::vector<std::string>& GenrePool();
const std::vector<std::string>& LabelPool();

const std::vector<std::string>& ResearchTopicPool();
const std::vector<std::string>& ResearchVerbPool();
const std::vector<std::string>& ResearchObjectPool();
/// Venue pool entries are "abbrev|full name" pairs separated by '|'.
const std::vector<std::string>& VenuePool();

}  // namespace data
}  // namespace emx

#endif  // EMX_DATA_POOLS_H_
