#ifndef EMX_DATA_NOISE_H_
#define EMX_DATA_NOISE_H_

#include <string>
#include <vector>

#include "util/rng.h"

namespace emx {
namespace data {

// Realistic value-noise primitives used by the dataset generators to make
// the two views of an entity differ the way real product/citation feeds do.

/// Introduces one random character-level typo (swap, drop, or duplicate).
/// Words shorter than 3 characters are returned unchanged.
std::string Typo(const std::string& word, Rng* rng);

/// "john smith" -> "j. smith" (abbreviates all but the last token).
std::string AbbreviateName(const std::string& full_name);

/// Drops each whitespace token independently with probability `p`
/// (always keeps at least one token).
std::string DropTokens(const std::string& text, double p, Rng* rng);

/// Randomly swaps a few adjacent tokens (light reordering).
std::string ShuffleTokensLightly(const std::string& text, Rng* rng);

/// Applies Typo to each token independently with probability `p`.
std::string TypoTokens(const std::string& text, double p, Rng* rng);

/// Perturbs a price by up to +-`fraction`, formatted with two decimals.
std::string PerturbPrice(double price, double fraction, Rng* rng);

/// Generates a model number like "zs551kl" or "a1523" (letters+digits).
std::string RandomModelNumber(Rng* rng);

/// Returns a model number that differs from `model` by one or two
/// characters — a hard negative for entity matching.
std::string SimilarModelNumber(const std::string& model, Rng* rng);

}  // namespace data
}  // namespace emx

#endif  // EMX_DATA_NOISE_H_
