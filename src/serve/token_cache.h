#ifndef EMX_SERVE_TOKEN_CACHE_H_
#define EMX_SERVE_TOKEN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "tokenizers/tokenizer.h"

namespace emx {
namespace serve {

/// A pair encoding plus its real (non-pad) token count, which the engine
/// uses to length-bucket requests.
struct CachedEncoding {
  tokenizers::EncodedPair enc;
  int64_t length = 0;
};

/// Thread-safe LRU cache of pair tokenizations keyed on the two input
/// texts. Subword tokenization is a meaningful slice of per-request cost
/// and EM traffic is heavily skewed (hot catalog entries are compared
/// against many candidates), so repeated texts should tokenize once.
///
/// On a miss the texts are tokenized *outside* the lock; two threads
/// missing on the same key may both tokenize, and the second insert is
/// dropped — wasted work, never inconsistency, since encodings are pure
/// functions of the key.
class TokenizationCache {
 public:
  /// `tokenizer` must outlive the cache. `capacity` is the max number of
  /// cached pairs — zero or negative disables caching entirely (every Get
  /// tokenizes fresh and reports a miss). `max_seq_len` is the fixed token
  /// budget every encoding is padded/truncated to.
  TokenizationCache(const tokenizers::Tokenizer* tokenizer, int64_t capacity,
                    int64_t max_seq_len);

  /// Returns the encoding for (a, b), tokenizing and caching on miss.
  /// `*hit` (optional) reports whether the cache already held the pair.
  CachedEncoding Get(std::string_view a, std::string_view b,
                     bool* hit = nullptr);

  int64_t size() const;
  int64_t capacity() const { return capacity_; }
  int64_t max_seq_len() const { return max_seq_len_; }

 private:
  struct Entry {
    std::string key;
    CachedEncoding value;
  };
  using EntryList = std::list<Entry>;

  const tokenizers::Tokenizer* tokenizer_;
  const int64_t capacity_;
  const int64_t max_seq_len_;

  mutable std::mutex mu_;
  EntryList lru_;  // front = most recently used
  std::unordered_map<std::string, EntryList::iterator> index_;
};

}  // namespace serve
}  // namespace emx

#endif  // EMX_SERVE_TOKEN_CACHE_H_
