#ifndef EMX_SERVE_TOKEN_CACHE_H_
#define EMX_SERVE_TOKEN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "tokenizers/tokenizer.h"

namespace emx {
namespace serve {

/// A pair encoding plus its real (non-pad) token count, which the engine
/// uses to length-bucket requests.
struct CachedEncoding {
  tokenizers::EncodedPair enc;
  int64_t length = 0;
};

/// Thread-safe LRU cache of pair tokenizations keyed on the two input
/// texts. Subword tokenization is a meaningful slice of per-request cost
/// and EM traffic is heavily skewed (hot catalog entries are compared
/// against many candidates), so repeated texts should tokenize once.
///
/// On a miss the texts are tokenized *outside* the lock; two threads
/// missing on the same key may both tokenize, and the second insert is
/// dropped — wasted work, never inconsistency, since encodings are pure
/// functions of the key.
class TokenizationCache {
 public:
  /// `tokenizer` must outlive the cache. `capacity` is the max number of
  /// cached pairs — zero or negative disables caching entirely (every Get
  /// tokenizes fresh and reports a miss). `max_seq_len` is the fixed token
  /// budget every encoding is padded/truncated to.
  TokenizationCache(const tokenizers::Tokenizer* tokenizer, int64_t capacity,
                    int64_t max_seq_len);

  /// Returns the encoding for (a, b), tokenizing and caching on miss.
  /// `*hit` (optional) reports whether the cache already held the pair.
  CachedEncoding Get(std::string_view a, std::string_view b,
                     bool* hit = nullptr);

  int64_t size() const;
  int64_t capacity() const { return capacity_; }
  int64_t max_seq_len() const { return max_seq_len_; }

  /// Approximate resident memory (keys + encodings + node overhead), so
  /// operators can size the cache from MetricsJson() instead of guessing.
  int64_t resident_bytes() const;
  /// Entries dropped by LRU eviction since construction.
  int64_t evictions() const;

 private:
  struct Entry {
    std::string key;
    CachedEncoding value;
    int64_t bytes = 0;
  };
  using EntryList = std::list<Entry>;

  static int64_t EntryBytes(const Entry& e);

  const tokenizers::Tokenizer* tokenizer_;
  const int64_t capacity_;
  const int64_t max_seq_len_;

  mutable std::mutex mu_;
  EntryList lru_;  // front = most recently used
  std::unordered_map<std::string, EntryList::iterator> index_;
  int64_t bytes_ = 0;
  int64_t evictions_ = 0;
};

/// Thread-safe LRU cache of *single-entity* tokenizations (raw
/// Tokenizer::Encode output, no special symbols). The split-encoder
/// serving path keys its activation cache per entity, so it needs each
/// side's token ids independently — pair encodings from TokenizationCache
/// cannot be reused because truncation couples the two sides. Same miss
/// discipline as TokenizationCache: tokenize outside the lock, first
/// insert wins.
class EntityTokenCache {
 public:
  /// `capacity` is the max number of cached entities; zero or negative
  /// disables caching.
  EntityTokenCache(const tokenizers::Tokenizer* tokenizer, int64_t capacity);

  /// Returns the token ids for `text`, tokenizing and caching on miss.
  std::shared_ptr<const std::vector<int64_t>> Get(std::string_view text,
                                                  bool* hit = nullptr);

  int64_t size() const;
  int64_t resident_bytes() const;
  int64_t evictions() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const std::vector<int64_t>> value;
    int64_t bytes = 0;
  };
  using EntryList = std::list<Entry>;

  const tokenizers::Tokenizer* tokenizer_;
  const int64_t capacity_;

  mutable std::mutex mu_;
  EntryList lru_;  // front = most recently used
  std::unordered_map<std::string, EntryList::iterator> index_;
  int64_t bytes_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace serve
}  // namespace emx

#endif  // EMX_SERVE_TOKEN_CACHE_H_
