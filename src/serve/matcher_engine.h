#ifndef EMX_SERVE_MATCHER_ENGINE_H_
#define EMX_SERVE_MATCHER_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/entity_matcher.h"
#include "serve/activation_cache.h"
#include "serve/serving_metrics.h"
#include "serve/token_cache.h"
#include "util/rng.h"
#include "util/status.h"

namespace emx {
namespace serve {

/// Numeric precision of the engine's grad-free forwards.
enum class Precision {
  /// The plain fp32 path. Any attached int8 backends are bypassed.
  kFp32,
  /// int8 backends (attached by quant::QuantizeMatcher or LoadQuantized)
  /// serve every quantized layer. Requires a quantized matcher.
  kInt8,
};

/// Tuning knobs for the serving engine.
struct EngineOptions {
  /// Flush a micro-batch as soon as this many same-bucket requests are
  /// queued...
  int64_t max_batch_size = 16;
  /// ...or as soon as the oldest queued request has waited this long.
  int64_t max_wait_us = 2000;
  /// Submissions beyond this bound are rejected with ResourceExhausted.
  int64_t queue_capacity = 1024;
  /// Token budget per pair (requests are truncated/padded like the
  /// training path).
  int64_t max_seq_len = 48;
  /// Length-bucket granularity in tokens: a request of real length L lands
  /// in bucket ceil(L / bucket_width) and is only batched with requests of
  /// the same bucket, padded to the bucket top instead of max_seq_len.
  int64_t bucket_width = 16;
  /// Tokenization LRU capacity (pairs).
  int64_t cache_capacity = 4096;
  /// Deadline applied to Submit calls that don't carry their own;
  /// 0 = no deadline.
  int64_t default_timeout_us = 0;
  /// Batch workers running concurrent grad-free forwards. A NoGradGuard
  /// forward only *reads* the shared parameter nodes (no tape, no gradient
  /// buffers), so multiple workers are race-free; on a multi-core host this
  /// overlaps batches the kernels are too small to parallelize internally.
  int64_t num_workers = 1;
  /// Construct with the batching worker paused (tests / drain control);
  /// call Resume() to start serving.
  bool start_paused = false;
  /// Forward precision. kInt8 requires the matcher to carry ready int8
  /// backends (see quant::QuantizeMatcher); construction aborts otherwise
  /// rather than silently serving fp32.
  Precision precision = Precision::kFp32;
  /// Split-encoder prefix caching. -1 (default) disables it: every request
  /// runs the full cross-encoder exactly as before. k >= 0 runs encoder
  /// layers [0, k) per *entity* with segment-local attention, caches the
  /// layer-k activations per entity text, and runs only layers [k, L) on
  /// the concatenated pair. k = 0 caches the embedding layer and is
  /// bit-identical to the full path; larger k trades accuracy for speed
  /// (gated like quant — see bench_prefix_cache). Requires a backbone with
  /// SupportsSplitEncode() (BERT/RoBERTa/DistilBERT; not XLNet) and
  /// k < num_layers so at least one cross-attention layer remains.
  int64_t split_layer = -1;
  /// Byte budget for the activation (prefix) cache; <= 0 disables caching
  /// (the split path still runs, recomputing prefixes every time).
  int64_t activation_cache_bytes = 64ll << 20;
};

/// The split depth serving defaults to when a caller opts into prefix
/// caching without choosing a layer: half the stack, the deepest point the
/// ΔF1 ladder in bench_prefix_cache gates at |ΔF1| <= 0.1 pt.
int64_t DefaultSplitLayer(int64_t num_layers);

/// Checks every EngineOptions field at construction time: non-positive
/// queue capacity, worker count, batch size, wait, bucket width or seq-len
/// budget, and negative cache capacity or default deadline all come back
/// as InvalidArgument naming the offending field — instead of a worker
/// that spins, a queue that rejects everything, or a divide-by-zero deep
/// in the batcher at runtime.
Status ValidateEngineOptions(const EngineOptions& options);

/// Outcome of one serving request.
struct MatchResult {
  /// OK, DeadlineExceeded (deadline passed while queued), ResourceExhausted
  /// (queue full at submit) or Unavailable (engine shut down).
  Status status;
  double probability = 0;
  bool is_match = false;
  /// Time from submit to micro-batch formation, µs.
  double queue_us = 0;
  /// Time from submit to completion, µs.
  double total_us = 0;
  /// Size of the micro-batch this request was served in.
  int64_t batch_size = 0;
  /// Whether tokenization was served from the LRU cache (on the split path:
  /// whether the candidate's entity tokenization was cached).
  bool cache_hit = false;
  /// Split path only: whether each side's layer-k prefix came from the
  /// activation cache (false on the pair path).
  bool prefix_hit_query = false;
  bool prefix_hit_candidate = false;
  /// Which model version served this request (1 = the construction-time
  /// model; incremented by every SwapModel). 0 on requests rejected or
  /// expired before reaching a model.
  uint64_t model_version = 0;
};

/// A query entity pinned for 1-vs-N re-ranking: the text is tokenized once
/// at PinQuery time and its layer-k prefix is encoded once per distinct
/// truncation length, instead of once per SubmitAgainst. Cheap to copy
/// (shared state); valid for the lifetime of the engine that minted it.
class PinnedQuery {
 public:
  PinnedQuery() = default;
  bool valid() const { return state_ != nullptr; }
  const std::string& text() const;

 private:
  friend class MatcherEngine;
  struct State {
    std::string text;
    std::vector<int64_t> ids;  // raw entity tokens, untruncated
  };
  std::shared_ptr<const State> state_;
};

/// Batched, grad-free inference serving for a fine-tuned (or
/// checkpoint-loaded) EntityMatcher.
///
/// Pipeline: Submit() tokenizes on the caller thread through the LRU cache,
/// length-buckets the request and enqueues it (bounded). A single batching
/// worker groups the oldest request with its bucket peers, flushes on
/// batch-size or max-wait, runs one NoGradGuard forward per micro-batch
/// padded only to the bucket top, and fulfills the per-request futures.
/// Metrics (throughput, latency percentiles, queue depth, batch-size
/// histogram, cache hit rate) are snapshotable as JSON at any time.
///
/// All model access happens on the engine's worker threads and is read-only
/// (grad-free forwards never touch gradient buffers or tapes); the wrapped
/// matcher must not be trained, loaded into, or otherwise *mutated* while
/// the engine is live. Submit() is thread-safe and non-blocking.
class MatcherEngine {
 public:
  /// `matcher` must outlive the engine (typically fine-tuned first, or
  /// populated via EntityMatcher::Load from a checkpoint).
  explicit MatcherEngine(core::EntityMatcher* matcher,
                         const EngineOptions& options = {});
  ~MatcherEngine();

  /// Validating factory: returns InvalidArgument (see
  /// ValidateEngineOptions) instead of aborting on bad options, for
  /// callers wiring engines from config files or network input. The plain
  /// constructor EMX_CHECKs the same conditions.
  static Result<std::unique_ptr<MatcherEngine>> Create(
      core::EntityMatcher* matcher, const EngineOptions& options = {});

  MatcherEngine(const MatcherEngine&) = delete;
  MatcherEngine& operator=(const MatcherEngine&) = delete;

  /// Enqueues a pair with the default deadline; the future resolves when
  /// the request is served, times out, or is rejected (check `status`).
  std::future<MatchResult> Submit(std::string text_a, std::string text_b);
  /// Enqueues with an explicit deadline (µs from now; 0 = none).
  std::future<MatchResult> Submit(std::string text_a, std::string text_b,
                                  int64_t timeout_us);

  /// Convenience: Submit + wait.
  MatchResult Match(std::string text_a, std::string text_b);

  /// Tokenizes `text` once for use as the query side of many SubmitAgainst
  /// calls. Works with split caching disabled too (SubmitAgainst then
  /// degrades to Submit(query.text(), candidate)).
  PinnedQuery PinQuery(std::string text);

  /// Enqueues (query, candidate) reusing the pinned query's tokenization
  /// and cached layer-k prefix. `query` must come from this engine's
  /// PinQuery.
  std::future<MatchResult> SubmitAgainst(const PinnedQuery& query,
                                         std::string candidate);
  std::future<MatchResult> SubmitAgainst(const PinnedQuery& query,
                                         std::string candidate,
                                         int64_t timeout_us);

  /// Pre-encodes the candidate-side layer-k prefix for `text`, assuming the
  /// query side will occupy `query_segment_len` tokens (CLS + query + SEP).
  /// Used to warm hot catalog entries at ingest; a no-op when split caching
  /// is disabled. Returns true when the prefix is resident afterwards.
  /// Requests whose actual query length differs still miss — warming is a
  /// best-effort latency optimization, never a correctness dependency.
  bool WarmCandidate(std::string_view text, int64_t query_segment_len);

  /// Atomically publishes `next` as the serving model. The swap is a
  /// single shared_ptr store: requests submitted afterwards run on `next`,
  /// while requests already queued or mid-batch finish on the version that
  /// was current when they were submitted (each request snapshots its
  /// model, so nothing is dropped, re-run, or mixed across versions within
  /// a batch) — the old model and any mmap it serves from are released
  /// when the last such request completes. The prefix (activation) cache
  /// is cleared, since cached layer-k activations belong to the old
  /// weights; prefix keys are also version-tagged, so even a checked-out
  /// stale entry can never satisfy a new-version lookup.
  ///
  /// `next` must match the engine's configuration — same architecture,
  /// hidden size and layer count as the current model, int8 backends when
  /// the engine serves kInt8, split support when split_layer is set — and
  /// must tokenize identically to the construction-time matcher (the
  /// tokenization caches are keyed on raw text and survive the swap).
  /// Returns InvalidArgument and keeps serving the old model otherwise.
  Status SwapModel(std::shared_ptr<core::EntityMatcher> next);

  /// The version new submissions are served by (1 until the first swap).
  uint64_t model_version() const;

  /// Stops/starts micro-batch formation; queued requests are held (their
  /// deadlines are only evaluated while running).
  void Pause();
  void Resume();

  /// Drains the queue (without waiting out max_wait) and stops the worker.
  /// Subsequent Submit calls fail with Unavailable. Idempotent; also run
  /// by the destructor.
  void Shutdown();

  MetricsSnapshot Metrics() const;
  std::string MetricsJson() const;

  int64_t queue_depth() const;
  const TokenizationCache& cache() const { return cache_; }
  const ActivationCache& prefix_cache() const { return prefix_cache_; }
  const EngineOptions& options() const { return options_; }
  /// Whether this engine serves through the split-encoder prefix path.
  bool split_enabled() const { return options_.split_layer >= 0; }

 private:
  using Clock = std::chrono::steady_clock;

  /// One published model. The initial version wraps the constructor's raw
  /// pointer with a no-op deleter (the caller owns it, per the constructor
  /// contract); swapped-in versions own their matcher outright.
  struct VersionedModel {
    std::shared_ptr<core::EntityMatcher> matcher;
    uint64_t version = 1;
  };

  struct Request {
    std::promise<MatchResult> promise;
    CachedEncoding enc;  // pair path only
    // Split path only: per-entity layer-k prefixes ([1, len, H] tensors,
    // shared with the activation cache so eviction cannot invalidate them).
    std::shared_ptr<const Tensor> prefix_q;
    std::shared_ptr<const Tensor> prefix_c;
    int64_t len_q = 0;  // CLS + truncated query + SEP
    int64_t len_c = 0;  // truncated candidate + SEP
    bool prefix_hit_q = false;
    bool prefix_hit_c = false;
    bool cache_hit = false;
    int64_t bucket = 0;
    /// The model snapshot this request runs on, taken at submit time. The
    /// version is folded into `bucket`, so a micro-batch never mixes
    /// models, and the shared_ptr keeps an already-swapped-out model (and
    /// its mmap) alive until the request completes.
    std::shared_ptr<const VersionedModel> model;
    Clock::time_point enqueued;
    Clock::time_point deadline;  // Clock::time_point::max() when none
  };

  void WorkerLoop(uint64_t worker_id);
  /// Completes every queued request whose deadline has passed. Caller holds
  /// `mu_`; promises are fulfilled after collecting, outside the queue scan.
  void ExpireQueuedLocked(Clock::time_point now);
  /// Takes the queue lock and either enqueues the prepared request or
  /// fulfills its promise with Unavailable / ResourceExhausted.
  void EnqueueOrReject(Request req);
  bool ShutdownSeen() const;
  /// Runs one micro-batch (no lock held): bucket-padded batch build,
  /// grad-free forward, promise fulfillment.
  void RunBatch(std::vector<Request> batch, Rng* rng);
  /// Split-path forward: concatenates cached prefixes into [B, T, H] and
  /// runs layers [split_layer, L) plus the head.
  void RunBatchSplit(std::vector<Request> batch, Rng* rng);

  /// Shared split submission tail: truncates the pair, resolves both
  /// prefixes through the activation cache (encoding misses on the caller
  /// thread), and enqueues.
  std::future<MatchResult> SubmitSplit(
      const std::shared_ptr<const PinnedQuery::State>& query,
      std::string_view candidate, int64_t timeout_us);
  /// Returns the layer-k prefix for one entity segment under `model`,
  /// consulting the activation cache (keys are version-tagged) and
  /// encoding on miss. `ids` are the truncated raw entity tokens (no
  /// specials).
  std::shared_ptr<const Tensor> PrefixFor(const VersionedModel& model,
                                          std::string_view text,
                                          const std::vector<int64_t>& ids,
                                          bool query_side,
                                          int64_t position_offset, bool* hit);
  /// The model new submissions snapshot.
  std::shared_ptr<const VersionedModel> CurrentModel() const {
    return model_.load(std::memory_order_acquire);
  }

  /// The construction-time matcher. Tokenization (cache_, entity_tokens_)
  /// stays bound to its tokenizer across swaps; forwards go through the
  /// per-request model snapshot instead.
  core::EntityMatcher* matcher_;
  std::atomic<std::shared_ptr<const VersionedModel>> model_;
  /// Serializes SwapModel callers (the version bump is read-modify-write).
  std::mutex swap_mu_;
  const EngineOptions options_;
  TokenizationCache cache_;
  ServingMetrics metrics_;
  EntityTokenCache entity_tokens_;
  ActivationCache prefix_cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Request> queue_;
  bool paused_ = false;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace emx

#endif  // EMX_SERVE_MATCHER_ENGINE_H_
