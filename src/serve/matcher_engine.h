#ifndef EMX_SERVE_MATCHER_ENGINE_H_
#define EMX_SERVE_MATCHER_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/entity_matcher.h"
#include "serve/serving_metrics.h"
#include "serve/token_cache.h"
#include "util/rng.h"
#include "util/status.h"

namespace emx {
namespace serve {

/// Numeric precision of the engine's grad-free forwards.
enum class Precision {
  /// The plain fp32 path. Any attached int8 backends are bypassed.
  kFp32,
  /// int8 backends (attached by quant::QuantizeMatcher or LoadQuantized)
  /// serve every quantized layer. Requires a quantized matcher.
  kInt8,
};

/// Tuning knobs for the serving engine.
struct EngineOptions {
  /// Flush a micro-batch as soon as this many same-bucket requests are
  /// queued...
  int64_t max_batch_size = 16;
  /// ...or as soon as the oldest queued request has waited this long.
  int64_t max_wait_us = 2000;
  /// Submissions beyond this bound are rejected with ResourceExhausted.
  int64_t queue_capacity = 1024;
  /// Token budget per pair (requests are truncated/padded like the
  /// training path).
  int64_t max_seq_len = 48;
  /// Length-bucket granularity in tokens: a request of real length L lands
  /// in bucket ceil(L / bucket_width) and is only batched with requests of
  /// the same bucket, padded to the bucket top instead of max_seq_len.
  int64_t bucket_width = 16;
  /// Tokenization LRU capacity (pairs).
  int64_t cache_capacity = 4096;
  /// Deadline applied to Submit calls that don't carry their own;
  /// 0 = no deadline.
  int64_t default_timeout_us = 0;
  /// Batch workers running concurrent grad-free forwards. A NoGradGuard
  /// forward only *reads* the shared parameter nodes (no tape, no gradient
  /// buffers), so multiple workers are race-free; on a multi-core host this
  /// overlaps batches the kernels are too small to parallelize internally.
  int64_t num_workers = 1;
  /// Construct with the batching worker paused (tests / drain control);
  /// call Resume() to start serving.
  bool start_paused = false;
  /// Forward precision. kInt8 requires the matcher to carry ready int8
  /// backends (see quant::QuantizeMatcher); construction aborts otherwise
  /// rather than silently serving fp32.
  Precision precision = Precision::kFp32;
};

/// Checks every EngineOptions field at construction time: non-positive
/// queue capacity, worker count, batch size, wait, bucket width or seq-len
/// budget, and negative cache capacity or default deadline all come back
/// as InvalidArgument naming the offending field — instead of a worker
/// that spins, a queue that rejects everything, or a divide-by-zero deep
/// in the batcher at runtime.
Status ValidateEngineOptions(const EngineOptions& options);

/// Outcome of one serving request.
struct MatchResult {
  /// OK, DeadlineExceeded (deadline passed while queued), ResourceExhausted
  /// (queue full at submit) or Unavailable (engine shut down).
  Status status;
  double probability = 0;
  bool is_match = false;
  /// Time from submit to micro-batch formation, µs.
  double queue_us = 0;
  /// Time from submit to completion, µs.
  double total_us = 0;
  /// Size of the micro-batch this request was served in.
  int64_t batch_size = 0;
  /// Whether tokenization was served from the LRU cache.
  bool cache_hit = false;
};

/// Batched, grad-free inference serving for a fine-tuned (or
/// checkpoint-loaded) EntityMatcher.
///
/// Pipeline: Submit() tokenizes on the caller thread through the LRU cache,
/// length-buckets the request and enqueues it (bounded). A single batching
/// worker groups the oldest request with its bucket peers, flushes on
/// batch-size or max-wait, runs one NoGradGuard forward per micro-batch
/// padded only to the bucket top, and fulfills the per-request futures.
/// Metrics (throughput, latency percentiles, queue depth, batch-size
/// histogram, cache hit rate) are snapshotable as JSON at any time.
///
/// All model access happens on the engine's worker threads and is read-only
/// (grad-free forwards never touch gradient buffers or tapes); the wrapped
/// matcher must not be trained, loaded into, or otherwise *mutated* while
/// the engine is live. Submit() is thread-safe and non-blocking.
class MatcherEngine {
 public:
  /// `matcher` must outlive the engine (typically fine-tuned first, or
  /// populated via EntityMatcher::Load from a checkpoint).
  explicit MatcherEngine(core::EntityMatcher* matcher,
                         const EngineOptions& options = {});
  ~MatcherEngine();

  /// Validating factory: returns InvalidArgument (see
  /// ValidateEngineOptions) instead of aborting on bad options, for
  /// callers wiring engines from config files or network input. The plain
  /// constructor EMX_CHECKs the same conditions.
  static Result<std::unique_ptr<MatcherEngine>> Create(
      core::EntityMatcher* matcher, const EngineOptions& options = {});

  MatcherEngine(const MatcherEngine&) = delete;
  MatcherEngine& operator=(const MatcherEngine&) = delete;

  /// Enqueues a pair with the default deadline; the future resolves when
  /// the request is served, times out, or is rejected (check `status`).
  std::future<MatchResult> Submit(std::string text_a, std::string text_b);
  /// Enqueues with an explicit deadline (µs from now; 0 = none).
  std::future<MatchResult> Submit(std::string text_a, std::string text_b,
                                  int64_t timeout_us);

  /// Convenience: Submit + wait.
  MatchResult Match(std::string text_a, std::string text_b);

  /// Stops/starts micro-batch formation; queued requests are held (their
  /// deadlines are only evaluated while running).
  void Pause();
  void Resume();

  /// Drains the queue (without waiting out max_wait) and stops the worker.
  /// Subsequent Submit calls fail with Unavailable. Idempotent; also run
  /// by the destructor.
  void Shutdown();

  MetricsSnapshot Metrics() const;
  std::string MetricsJson() const;

  int64_t queue_depth() const;
  const TokenizationCache& cache() const { return cache_; }
  const EngineOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    std::promise<MatchResult> promise;
    CachedEncoding enc;
    bool cache_hit = false;
    int64_t bucket = 0;
    Clock::time_point enqueued;
    Clock::time_point deadline;  // Clock::time_point::max() when none
  };

  void WorkerLoop(uint64_t worker_id);
  /// Completes every queued request whose deadline has passed. Caller holds
  /// `mu_`; promises are fulfilled after collecting, outside the queue scan.
  void ExpireQueuedLocked(Clock::time_point now);
  /// Runs one micro-batch (no lock held): bucket-padded batch build,
  /// grad-free forward, promise fulfillment.
  void RunBatch(std::vector<Request> batch, Rng* rng);

  core::EntityMatcher* matcher_;
  const EngineOptions options_;
  TokenizationCache cache_;
  ServingMetrics metrics_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Request> queue_;
  bool paused_ = false;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace emx

#endif  // EMX_SERVE_MATCHER_ENGINE_H_
