#include "serve/activation_cache.h"

#include <utility>

#include "util/logging.h"

namespace emx {
namespace serve {

ActivationCache::ActivationCache(int64_t max_bytes, obs::Counter* evictions,
                                 obs::Gauge* resident_bytes)
    : max_bytes_(max_bytes),
      eviction_counter_(evictions),
      bytes_gauge_(resident_bytes) {}

int64_t ActivationCache::EntryBytes(const std::string& key,
                                    const Tensor& value) {
  // Tensor payload + key storage + fixed list/map node overhead. The
  // overhead constant keeps a budget of N bytes from admitting far more
  // than N bytes of real memory when entries are tiny.
  constexpr int64_t kNodeOverhead = 160;
  return value.size() * static_cast<int64_t>(sizeof(float)) +
         static_cast<int64_t>(key.size()) + kNodeOverhead;
}

std::shared_ptr<const Tensor> ActivationCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to front
  ++hits_;
  return it->second->value;
}

std::shared_ptr<const Tensor> ActivationCache::Put(const std::string& key,
                                                   Tensor value) {
  auto shared = std::make_shared<const Tensor>(std::move(value));
  if (max_bytes_ <= 0) return shared;  // caching disabled
  const int64_t bytes = EntryBytes(key, *shared);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Lost a race with another miss on the same key; keep the winner (the
    // values are identical by construction).
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->value;
  }
  lru_.push_front(Entry{key, shared, bytes});
  index_.emplace(lru_.front().key, lru_.begin());
  bytes_ += bytes;
  EvictToBudgetLocked();
  if (bytes_gauge_ != nullptr) bytes_gauge_->Set(static_cast<double>(bytes_));
  return shared;
}

void ActivationCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  index_.clear();
  lru_.clear();
  bytes_ = 0;
  if (bytes_gauge_ != nullptr) bytes_gauge_->Set(0);
}

void ActivationCache::EvictToBudgetLocked() {
  int64_t evicted = 0;
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    bytes_ -= lru_.back().bytes;
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evicted;
  }
  if (evicted > 0) {
    evictions_ += evicted;
    if (eviction_counter_ != nullptr) eviction_counter_->Add(evicted);
  }
}

ActivationCacheStats ActivationCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ActivationCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = static_cast<int64_t>(lru_.size());
  s.resident_bytes = bytes_;
  return s;
}

int64_t ActivationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(lru_.size());
}

int64_t ActivationCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

int64_t ActivationCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace serve
}  // namespace emx
