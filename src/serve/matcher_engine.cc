#include "serve/matcher_engine.h"

#include <algorithm>
#include <utility>

#include "nn/layers.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "tensor/variable.h"
#include "util/logging.h"

namespace emx {
namespace serve {
namespace {

double ElapsedUs(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// True when any quant target of the model carries a frozen int8 backend
/// (checked via the nn hooks only, so serve stays independent of emx_quant).
bool HasReadyInt8Backends(core::EntityMatcher* matcher) {
  nn::QuantTargets targets;
  matcher->classifier()->CollectQuantTargets("", &targets);
  for (auto& [name, linear] : targets.linears) {
    if (linear->backend() != nullptr && linear->backend()->ready()) {
      return true;
    }
  }
  for (auto& [name, ffn] : targets.ffns) {
    if (ffn->backend() != nullptr && ffn->backend()->ready()) return true;
  }
  return false;
}

}  // namespace

Status ValidateEngineOptions(const EngineOptions& options) {
  if (options.max_batch_size <= 0) {
    return Status::InvalidArgument("max_batch_size must be positive, got " +
                                   std::to_string(options.max_batch_size));
  }
  if (options.max_wait_us <= 0) {
    return Status::InvalidArgument("max_wait_us must be positive, got " +
                                   std::to_string(options.max_wait_us));
  }
  if (options.queue_capacity <= 0) {
    return Status::InvalidArgument("queue_capacity must be positive, got " +
                                   std::to_string(options.queue_capacity));
  }
  if (options.max_seq_len <= 0) {
    return Status::InvalidArgument("max_seq_len must be positive, got " +
                                   std::to_string(options.max_seq_len));
  }
  if (options.bucket_width <= 0) {
    return Status::InvalidArgument("bucket_width must be positive, got " +
                                   std::to_string(options.bucket_width));
  }
  if (options.cache_capacity < 0) {
    return Status::InvalidArgument("cache_capacity must not be negative, "
                                   "got " +
                                   std::to_string(options.cache_capacity));
  }
  if (options.default_timeout_us < 0) {
    return Status::InvalidArgument(
        "default_timeout_us must not be negative, got " +
        std::to_string(options.default_timeout_us));
  }
  if (options.num_workers <= 0) {
    return Status::InvalidArgument("num_workers must be positive, got " +
                                   std::to_string(options.num_workers));
  }
  return Status::OK();
}

Result<std::unique_ptr<MatcherEngine>> MatcherEngine::Create(
    core::EntityMatcher* matcher, const EngineOptions& options) {
  if (matcher == nullptr) {
    return Status::InvalidArgument("matcher must not be null");
  }
  EMX_RETURN_IF_ERROR(ValidateEngineOptions(options));
  if (options.precision == Precision::kInt8 &&
      !HasReadyInt8Backends(matcher)) {
    return Status::InvalidArgument(
        "precision = kInt8 but the matcher has no frozen int8 backends; "
        "run quant::QuantizeMatcher (or LoadQuantized) first");
  }
  return std::make_unique<MatcherEngine>(matcher, options);
}

MatcherEngine::MatcherEngine(core::EntityMatcher* matcher,
                             const EngineOptions& options)
    : matcher_(matcher),
      options_(options),
      cache_(&matcher->tokenizer(), options.cache_capacity,
             options.max_seq_len),
      metrics_(options.max_batch_size),
      paused_(options.start_paused) {
  EMX_CHECK(matcher != nullptr);
  {
    const Status valid = ValidateEngineOptions(options_);
    EMX_CHECK(valid.ok()) << valid.ToString()
                          << " (use MatcherEngine::Create for a "
                             "non-aborting Status)";
  }
  if (options_.precision == Precision::kInt8) {
    EMX_CHECK(HasReadyInt8Backends(matcher))
        << "EngineOptions::precision = kInt8 but the matcher has no frozen "
           "int8 backends; run quant::QuantizeMatcher (or LoadQuantized) "
           "before constructing the engine";
  }
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int64_t w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back(&MatcherEngine::WorkerLoop, this,
                          static_cast<uint64_t>(w));
  }
}

MatcherEngine::~MatcherEngine() { Shutdown(); }

std::future<MatchResult> MatcherEngine::Submit(std::string text_a,
                                               std::string text_b) {
  return Submit(std::move(text_a), std::move(text_b),
                options_.default_timeout_us);
}

std::future<MatchResult> MatcherEngine::Submit(std::string text_a,
                                               std::string text_b,
                                               int64_t timeout_us) {
  Request req;
  req.enqueued = Clock::now();
  req.deadline = timeout_us > 0
                     ? req.enqueued + std::chrono::microseconds(timeout_us)
                     : Clock::time_point::max();
  std::future<MatchResult> fut = req.promise.get_future();

  {
    // Fail fast before paying for tokenization.
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      MatchResult r;
      r.status = Status::Unavailable("engine is shut down");
      req.promise.set_value(std::move(r));
      return fut;
    }
  }

  bool hit = false;
  {
    EMX_TRACE_SPAN("serve.tokenize");
    req.enc = cache_.Get(text_a, text_b, &hit);
  }
  req.cache_hit = hit;
  metrics_.RecordCacheLookup(hit);
  req.bucket = std::max<int64_t>(
      1, (req.enc.length + options_.bucket_width - 1) / options_.bucket_width);

  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    MatchResult r;
    r.status = Status::Unavailable("engine is shut down");
    req.promise.set_value(std::move(r));
  } else if (static_cast<int64_t>(queue_.size()) >= options_.queue_capacity) {
    metrics_.RecordRejected();
    MatchResult r;
    r.status = Status::ResourceExhausted("request queue is full");
    r.cache_hit = hit;
    req.promise.set_value(std::move(r));
  } else {
    queue_.push_back(std::move(req));
    metrics_.RecordSubmitted(static_cast<int64_t>(queue_.size()));
    obs::TraceCounterValue("serve.queue_depth",
                           static_cast<double>(queue_.size()));
    work_cv_.notify_all();
  }
  return fut;
}

MatchResult MatcherEngine::Match(std::string text_a, std::string text_b) {
  return Submit(std::move(text_a), std::move(text_b)).get();
}

void MatcherEngine::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void MatcherEngine::Resume() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = false;
  work_cv_.notify_all();
}

void MatcherEngine::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    work_cv_.notify_all();
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

MetricsSnapshot MatcherEngine::Metrics() const {
  return metrics_.Snapshot(queue_depth());
}

std::string MatcherEngine::MetricsJson() const { return Metrics().ToJson(); }

int64_t MatcherEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

void MatcherEngine::ExpireQueuedLocked(Clock::time_point now) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->deadline <= now) {
      MatchResult r;
      r.status = Status::DeadlineExceeded("deadline passed while queued");
      r.queue_us = ElapsedUs(it->enqueued, now);
      r.total_us = r.queue_us;
      r.cache_hit = it->cache_hit;
      metrics_.RecordTimeout();
      it->promise.set_value(std::move(r));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void MatcherEngine::WorkerLoop(uint64_t worker_id) {
  // Per-worker Rng (the eval forward never consumes randomness, but the
  // Logits API takes one).
  Rng rng(0x5e7e + worker_id);
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || (!paused_ && !queue_.empty());
    });
    const Clock::time_point now = Clock::now();
    // Shutdown overrides pause: queued work is drained either way.
    if (!paused_ || shutdown_) ExpireQueuedLocked(now);
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }

    // The oldest request defines the bucket to serve and the flush clock.
    const int64_t bucket = queue_.front().bucket;
    const Clock::time_point flush_at =
        queue_.front().enqueued +
        std::chrono::microseconds(options_.max_wait_us);
    int64_t in_bucket = 0;
    for (const Request& r : queue_) {
      if (r.bucket == bucket && ++in_bucket >= options_.max_batch_size) break;
    }

    if (!shutdown_ && in_bucket < options_.max_batch_size && now < flush_at) {
      // Not full and not due: sleep until the flush deadline or the next
      // per-request deadline, whichever comes first (or a new submission).
      Clock::time_point wake = flush_at;
      for (const Request& r : queue_) wake = std::min(wake, r.deadline);
      work_cv_.wait_until(lock, wake);
      continue;
    }

    std::vector<Request> batch;
    batch.reserve(static_cast<size_t>(in_bucket));
    for (auto it = queue_.begin();
         it != queue_.end() &&
         static_cast<int64_t>(batch.size()) < options_.max_batch_size;) {
      if (it->bucket == bucket) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    lock.unlock();
    RunBatch(std::move(batch), &rng);
    lock.lock();
  }
}

void MatcherEngine::RunBatch(std::vector<Request> batch, Rng* rng) {
  const Clock::time_point formed = Clock::now();
  const int64_t b = static_cast<int64_t>(batch.size());
  EMX_TRACE_SPAN("serve.batch", [&] {
    return obs::KeyValues(
        {{"size", b},
         {"bucket", batch.empty() ? 0 : batch.front().bucket}});
  });

  // Pad only to the bucket top (rounded up from the longest member), not to
  // the engine-wide max_seq_len: short pairs never pay for long ones.
  int64_t longest = 1;
  for (const Request& r : batch) longest = std::max(longest, r.enc.length);
  const int64_t target_len = std::min(
      options_.max_seq_len,
      (longest + options_.bucket_width - 1) / options_.bucket_width *
          options_.bucket_width);

  models::Batch mb;
  mb.batch_size = b;
  mb.seq_len = target_len;
  mb.ids.reserve(static_cast<size_t>(b * target_len));
  mb.segment_ids.reserve(static_cast<size_t>(b * target_len));
  std::vector<float> pad_flags;
  pad_flags.reserve(static_cast<size_t>(b * target_len));
  for (const Request& r : batch) {
    // Cached encodings are padded to max_seq_len; the batch keeps only the
    // first target_len positions (>= every member's real length, so only
    // pad tokens are dropped and masked attention is unchanged).
    const auto& enc = r.enc.enc;
    mb.ids.insert(mb.ids.end(), enc.ids.begin(), enc.ids.begin() + target_len);
    mb.segment_ids.insert(mb.segment_ids.end(), enc.segment_ids.begin(),
                          enc.segment_ids.begin() + target_len);
    pad_flags.insert(pad_flags.end(), enc.attention_mask.begin(),
                     enc.attention_mask.begin() + target_len);
  }
  mb.attention_mask = models::Batch::MakeMask(pad_flags, b, target_len);

  NoGradGuard no_grad;
  // QuantMode is thread-local, so each worker pins the engine's precision
  // for the duration of its own forward.
  nn::QuantModeGuard quant(options_.precision == Precision::kInt8);
  Variable logits = matcher_->classifier()->Logits(mb, /*train=*/false, rng);
  Tensor probs = ops::Softmax(logits.value());
  const Clock::time_point done = Clock::now();

  metrics_.RecordBatch(b);
  for (int64_t i = 0; i < b; ++i) {
    Request& r = batch[static_cast<size_t>(i)];
    MatchResult result;
    result.status = Status::OK();
    result.probability = probs[i * 2 + 1];
    result.is_match = result.probability >= 0.5;
    result.queue_us = ElapsedUs(r.enqueued, formed);
    result.total_us = ElapsedUs(r.enqueued, done);
    result.batch_size = b;
    result.cache_hit = r.cache_hit;
    metrics_.RecordCompletion(result.total_us);
    r.promise.set_value(std::move(result));
  }
}

}  // namespace serve
}  // namespace emx
