#include "serve/matcher_engine.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "models/config.h"
#include "nn/layers.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "tensor/variable.h"
#include "tokenizers/tokenizer.h"
#include "util/logging.h"

namespace emx {
namespace serve {
namespace {

double ElapsedUs(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Length buckets occupy the low bits of Request::bucket; the model
/// version is folded into the high bits so a micro-batch (formed by exact
/// bucket equality) can never span a hot swap.
constexpr int64_t kVersionBucketStride = 1ll << 32;

/// True when any quant target of the model carries a frozen int8 backend
/// (checked via the nn hooks only, so serve stays independent of emx_quant).
bool HasReadyInt8Backends(core::EntityMatcher* matcher) {
  nn::QuantTargets targets;
  matcher->classifier()->CollectQuantTargets("", &targets);
  for (auto& [name, linear] : targets.linears) {
    if (linear->backend() != nullptr && linear->backend()->ready()) {
      return true;
    }
  }
  for (auto& [name, ffn] : targets.ffns) {
    if (ffn->backend() != nullptr && ffn->backend()->ready()) return true;
  }
  return false;
}

}  // namespace

int64_t DefaultSplitLayer(int64_t num_layers) { return num_layers / 2; }

const std::string& PinnedQuery::text() const {
  EMX_CHECK(state_ != nullptr) << "PinnedQuery is empty (default-constructed "
                                  "instead of minted by PinQuery)";
  return state_->text;
}

Status ValidateEngineOptions(const EngineOptions& options) {
  if (options.max_batch_size <= 0) {
    return Status::InvalidArgument("max_batch_size must be positive, got " +
                                   std::to_string(options.max_batch_size));
  }
  if (options.max_wait_us <= 0) {
    return Status::InvalidArgument("max_wait_us must be positive, got " +
                                   std::to_string(options.max_wait_us));
  }
  if (options.queue_capacity <= 0) {
    return Status::InvalidArgument("queue_capacity must be positive, got " +
                                   std::to_string(options.queue_capacity));
  }
  if (options.max_seq_len <= 0) {
    return Status::InvalidArgument("max_seq_len must be positive, got " +
                                   std::to_string(options.max_seq_len));
  }
  if (options.bucket_width <= 0) {
    return Status::InvalidArgument("bucket_width must be positive, got " +
                                   std::to_string(options.bucket_width));
  }
  if (options.cache_capacity < 0) {
    return Status::InvalidArgument("cache_capacity must not be negative, "
                                   "got " +
                                   std::to_string(options.cache_capacity));
  }
  if (options.default_timeout_us < 0) {
    return Status::InvalidArgument(
        "default_timeout_us must not be negative, got " +
        std::to_string(options.default_timeout_us));
  }
  if (options.num_workers <= 0) {
    return Status::InvalidArgument("num_workers must be positive, got " +
                                   std::to_string(options.num_workers));
  }
  if (options.split_layer < -1) {
    return Status::InvalidArgument(
        "split_layer must be -1 (disabled) or >= 0, got " +
        std::to_string(options.split_layer));
  }
  if (options.split_layer >= 0 && options.max_seq_len < 4) {
    return Status::InvalidArgument(
        "split encoding needs max_seq_len >= 4 ([CLS] a [SEP] b [SEP])");
  }
  return Status::OK();
}

Result<std::unique_ptr<MatcherEngine>> MatcherEngine::Create(
    core::EntityMatcher* matcher, const EngineOptions& options) {
  if (matcher == nullptr) {
    return Status::InvalidArgument("matcher must not be null");
  }
  EMX_RETURN_IF_ERROR(ValidateEngineOptions(options));
  if (options.precision == Precision::kInt8 &&
      !HasReadyInt8Backends(matcher)) {
    return Status::InvalidArgument(
        "precision = kInt8 but the matcher has no frozen int8 backends; "
        "run quant::QuantizeMatcher (or LoadQuantized) first");
  }
  if (options.split_layer >= 0) {
    models::TransformerModel* backbone = matcher->classifier()->backbone();
    if (!backbone->SupportsSplitEncode()) {
      return Status::InvalidArgument(
          std::string("split_layer set but the ") +
          models::ArchitectureName(backbone->config().arch) +
          " backbone does not support split encoding");
    }
    if (options.split_layer >= backbone->config().num_layers) {
      return Status::InvalidArgument(
          "split_layer must leave at least one cross-attention layer: got " +
          std::to_string(options.split_layer) + " with " +
          std::to_string(backbone->config().num_layers) + " layers");
    }
  }
  return std::make_unique<MatcherEngine>(matcher, options);
}

MatcherEngine::MatcherEngine(core::EntityMatcher* matcher,
                             const EngineOptions& options)
    : matcher_(matcher),
      options_(options),
      cache_(&matcher->tokenizer(), options.cache_capacity,
             options.max_seq_len),
      metrics_(options.max_batch_size),
      entity_tokens_(&matcher->tokenizer(), options.cache_capacity),
      prefix_cache_(
          options.activation_cache_bytes,
          metrics_.registry()->GetCounter("serve.prefix_cache.evictions"),
          metrics_.registry()->GetGauge("serve.prefix_cache.bytes")),
      paused_(options.start_paused) {
  EMX_CHECK(matcher != nullptr);
  {
    const Status valid = ValidateEngineOptions(options_);
    EMX_CHECK(valid.ok()) << valid.ToString()
                          << " (use MatcherEngine::Create for a "
                             "non-aborting Status)";
  }
  if (options_.precision == Precision::kInt8) {
    EMX_CHECK(HasReadyInt8Backends(matcher))
        << "EngineOptions::precision = kInt8 but the matcher has no frozen "
           "int8 backends; run quant::QuantizeMatcher (or LoadQuantized) "
           "before constructing the engine";
  }
  if (options_.split_layer >= 0) {
    models::TransformerModel* backbone = matcher->classifier()->backbone();
    EMX_CHECK(backbone->SupportsSplitEncode())
        << models::ArchitectureName(backbone->config().arch)
        << " does not support split encoding (EngineOptions::split_layer)";
    EMX_CHECK_LT(options_.split_layer, backbone->config().num_layers)
        << "split_layer must leave at least one cross-attention layer";
  }
  // Version 1: the caller-owned matcher behind a no-op deleter, so the
  // initial model flows through the same snapshot path as swapped ones.
  model_.store(std::make_shared<const VersionedModel>(VersionedModel{
                   std::shared_ptr<core::EntityMatcher>(
                       matcher, [](core::EntityMatcher*) {}),
                   1}),
               std::memory_order_release);
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int64_t w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back(&MatcherEngine::WorkerLoop, this,
                          static_cast<uint64_t>(w));
  }
}

MatcherEngine::~MatcherEngine() { Shutdown(); }

std::future<MatchResult> MatcherEngine::Submit(std::string text_a,
                                               std::string text_b) {
  return Submit(std::move(text_a), std::move(text_b),
                options_.default_timeout_us);
}

std::future<MatchResult> MatcherEngine::Submit(std::string text_a,
                                               std::string text_b,
                                               int64_t timeout_us) {
  if (split_enabled()) {
    // Every request takes the split path when it is enabled, so batches
    // stay homogeneous. The query side is tokenized through the entity
    // cache (hot queries converge with PinQuery's behavior).
    auto state = std::make_shared<PinnedQuery::State>();
    state->text = std::move(text_a);
    if (!ShutdownSeen()) state->ids = *entity_tokens_.Get(state->text);
    return SubmitSplit(std::move(state), text_b, timeout_us);
  }
  Request req;
  req.enqueued = Clock::now();
  req.deadline = timeout_us > 0
                     ? req.enqueued + std::chrono::microseconds(timeout_us)
                     : Clock::time_point::max();
  std::future<MatchResult> fut = req.promise.get_future();

  {
    // Fail fast before paying for tokenization.
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      MatchResult r;
      r.status = Status::Unavailable("engine is shut down");
      req.promise.set_value(std::move(r));
      return fut;
    }
  }

  bool hit = false;
  {
    EMX_TRACE_SPAN("serve.tokenize");
    req.enc = cache_.Get(text_a, text_b, &hit);
  }
  req.cache_hit = hit;
  metrics_.RecordCacheLookup(hit);
  metrics_.RecordTokenCacheBytes(cache_.resident_bytes() +
                                 entity_tokens_.resident_bytes());
  req.model = CurrentModel();
  req.bucket =
      std::max<int64_t>(1, (req.enc.length + options_.bucket_width - 1) /
                               options_.bucket_width) +
      static_cast<int64_t>(req.model->version) * kVersionBucketStride;
  EnqueueOrReject(std::move(req));
  return fut;
}

bool MatcherEngine::ShutdownSeen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

void MatcherEngine::EnqueueOrReject(Request req) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    MatchResult r;
    r.status = Status::Unavailable("engine is shut down");
    r.cache_hit = req.cache_hit;
    r.prefix_hit_query = req.prefix_hit_q;
    r.prefix_hit_candidate = req.prefix_hit_c;
    req.promise.set_value(std::move(r));
  } else if (static_cast<int64_t>(queue_.size()) >= options_.queue_capacity) {
    metrics_.RecordRejected();
    MatchResult r;
    r.status = Status::ResourceExhausted("request queue is full");
    r.cache_hit = req.cache_hit;
    r.prefix_hit_query = req.prefix_hit_q;
    r.prefix_hit_candidate = req.prefix_hit_c;
    req.promise.set_value(std::move(r));
  } else {
    queue_.push_back(std::move(req));
    metrics_.RecordSubmitted(static_cast<int64_t>(queue_.size()));
    obs::TraceCounterValue("serve.queue_depth",
                           static_cast<double>(queue_.size()));
    work_cv_.notify_all();
  }
}

MatchResult MatcherEngine::Match(std::string text_a, std::string text_b) {
  return Submit(std::move(text_a), std::move(text_b)).get();
}

PinnedQuery MatcherEngine::PinQuery(std::string text) {
  auto state = std::make_shared<PinnedQuery::State>();
  state->text = std::move(text);
  if (split_enabled()) {
    EMX_TRACE_SPAN("serve.tokenize");
    state->ids = *entity_tokens_.Get(state->text);
  }
  PinnedQuery pinned;
  pinned.state_ = std::move(state);
  return pinned;
}

std::future<MatchResult> MatcherEngine::SubmitAgainst(const PinnedQuery& query,
                                                      std::string candidate) {
  return SubmitAgainst(query, std::move(candidate),
                       options_.default_timeout_us);
}

std::future<MatchResult> MatcherEngine::SubmitAgainst(const PinnedQuery& query,
                                                      std::string candidate,
                                                      int64_t timeout_us) {
  EMX_CHECK(query.valid()) << "SubmitAgainst needs a PinnedQuery from "
                              "PinQuery, not a default-constructed one";
  if (!split_enabled()) {
    return Submit(query.state_->text, std::move(candidate), timeout_us);
  }
  return SubmitSplit(query.state_, candidate, timeout_us);
}

std::future<MatchResult> MatcherEngine::SubmitSplit(
    const std::shared_ptr<const PinnedQuery::State>& query,
    std::string_view candidate, int64_t timeout_us) {
  Request req;
  req.enqueued = Clock::now();
  req.deadline = timeout_us > 0
                     ? req.enqueued + std::chrono::microseconds(timeout_us)
                     : Clock::time_point::max();
  std::future<MatchResult> fut = req.promise.get_future();

  {
    // Fail fast before paying for tokenization / prefix encoding.
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      MatchResult r;
      r.status = Status::Unavailable("engine is shut down");
      req.promise.set_value(std::move(r));
      return fut;
    }
  }

  bool tok_hit = false;
  std::shared_ptr<const std::vector<int64_t>> c_ids;
  {
    EMX_TRACE_SPAN("serve.tokenize");
    c_ids = entity_tokens_.Get(candidate, &tok_hit);
  }
  req.cache_hit = tok_hit;
  metrics_.RecordCacheLookup(tok_hit);
  metrics_.RecordTokenCacheBytes(cache_.resident_bytes() +
                                 entity_tokens_.resident_bytes());

  // Longest-first truncation over the raw entity tokens — the exact
  // discipline EncodePair applies, so the concatenated layout (and with it
  // the k = 0 logits) matches the pair path token for token.
  std::vector<int64_t> a = query->ids;
  std::vector<int64_t> b = *c_ids;
  tokenizers::TruncatePair(&a, &b, options_.max_seq_len - 3);
  req.len_q = static_cast<int64_t>(a.size()) + 2;  // [CLS] a [SEP]
  req.len_c = static_cast<int64_t>(b.size()) + 1;  // b [SEP]

  // One snapshot covers both prefixes and the upper-layer forward, so a
  // swap landing mid-submit cannot feed version-N prefixes into version-
  // N+1 cross-attention layers.
  req.model = CurrentModel();
  req.prefix_q = PrefixFor(*req.model, query->text, a, /*query_side=*/true,
                           /*position_offset=*/0, &req.prefix_hit_q);
  req.prefix_c = PrefixFor(*req.model, candidate, b, /*query_side=*/false,
                           /*position_offset=*/req.len_q, &req.prefix_hit_c);

  req.bucket =
      std::max<int64_t>(1, (req.len_q + req.len_c + options_.bucket_width - 1) /
                               options_.bucket_width) +
      static_cast<int64_t>(req.model->version) * kVersionBucketStride;
  EnqueueOrReject(std::move(req));
  return fut;
}

std::shared_ptr<const Tensor> MatcherEngine::PrefixFor(
    const VersionedModel& model, std::string_view text,
    const std::vector<int64_t>& ids, bool query_side, int64_t position_offset,
    bool* hit) {
  // The key carries everything the activation depends on besides the
  // engine-constant split_layer and precision: the model version that
  // produced it (the cache is also cleared on swap; the tag makes
  // staleness structurally impossible rather than timing-dependent),
  // which side the segment embeds as, the text, the truncated token
  // count, and (candidate side) the absolute position offset imposed by
  // the query's length.
  std::string key;
  key.reserve(text.size() + 24);
  key += std::to_string(model.version);
  key.push_back('\x1f');
  key.push_back(query_side ? 'q' : 'c');
  key.push_back('\x1f');
  key.append(text);
  key.push_back('\x1f');
  key += std::to_string(ids.size());
  if (!query_side) {
    key.push_back('\x1f');
    key += std::to_string(position_offset);
  }

  std::shared_ptr<const Tensor> cached = prefix_cache_.Get(key);
  const bool was_hit = cached != nullptr;
  if (hit != nullptr) *hit = was_hit;
  metrics_.RecordPrefixLookup(was_hit);
  if (was_hit) return cached;

  EMX_TRACE_SPAN("serve.prefix_encode", [&] {
    return obs::KeyValues(
        {{"tokens", static_cast<int64_t>(ids.size())},
         {"query_side", query_side ? int64_t{1} : int64_t{0}}});
  });
  const auto& specials = model.matcher->tokenizer().specials();
  models::Batch seg;
  seg.batch_size = 1;
  if (query_side) {
    seg.ids.reserve(ids.size() + 2);
    seg.ids.push_back(specials.cls);
    seg.ids.insert(seg.ids.end(), ids.begin(), ids.end());
    seg.ids.push_back(specials.sep);
  } else {
    seg.ids.reserve(ids.size() + 1);
    seg.ids = ids;
    seg.ids.push_back(specials.sep);
  }
  seg.seq_len = static_cast<int64_t>(seg.ids.size());
  seg.segment_ids.assign(seg.ids.size(), query_side ? 0 : 1);
  // No mask: the segment has no padding, and segment-locality is implied
  // by encoding it alone.
  NoGradGuard no_grad;
  nn::QuantModeGuard quant(options_.precision == Precision::kInt8);
  Rng rng(0);  // never drawn: the prefix forward runs dropout-free
  Variable prefix =
      model.matcher->classifier()->backbone()->EncodeSegmentPrefix(
          seg, options_.split_layer, position_offset, &rng);
  return prefix_cache_.Put(key, prefix.value());
}

bool MatcherEngine::WarmCandidate(std::string_view text,
                                  int64_t query_segment_len) {
  if (!split_enabled()) return false;
  EMX_CHECK_GE(query_segment_len, 2)
      << "query_segment_len counts [CLS] and [SEP]";
  if (ShutdownSeen()) return false;
  std::shared_ptr<const std::vector<int64_t>> c_ids = entity_tokens_.Get(text);
  // Replay EncodePair's longest-first truncation against a hypothetical
  // query of the given length, so the warmed key matches what a real
  // request of that shape will ask for.
  int64_t la = query_segment_len - 2;
  int64_t lb = static_cast<int64_t>(c_ids->size());
  const int64_t budget = options_.max_seq_len - 3;
  while (la + lb > budget) {
    if (la >= lb && la > 0) {
      --la;
    } else if (lb > 0) {
      --lb;
    } else {
      --la;
    }
  }
  std::vector<int64_t> b(c_ids->begin(), c_ids->begin() + lb);
  bool hit = false;
  PrefixFor(*CurrentModel(), text, b, /*query_side=*/false,
            /*position_offset=*/la + 2, &hit);
  return true;
}

Status MatcherEngine::SwapModel(std::shared_ptr<core::EntityMatcher> next) {
  if (next == nullptr) {
    return Status::InvalidArgument("SwapModel: next model must not be null");
  }
  // The version bump is read-modify-write over model_, so concurrent
  // swappers are serialized; Submit/RunBatch never take this lock.
  std::lock_guard<std::mutex> swap_lock(swap_mu_);
  const std::shared_ptr<const VersionedModel> cur = CurrentModel();
  core::EntityMatcher* old = cur->matcher.get();
  if (next->arch() != old->arch()) {
    return Status::InvalidArgument(
        std::string("SwapModel: architecture mismatch: serving ") +
        old->arch_name() + ", next is " + next->arch_name());
  }
  const models::TransformerConfig& nc =
      next->classifier()->backbone()->config();
  const models::TransformerConfig& oc =
      old->classifier()->backbone()->config();
  if (nc.hidden != oc.hidden || nc.num_layers != oc.num_layers) {
    return Status::InvalidArgument(
        "SwapModel: model geometry mismatch: serving hidden=" +
        std::to_string(oc.hidden) + "/layers=" +
        std::to_string(oc.num_layers) + ", next has hidden=" +
        std::to_string(nc.hidden) + "/layers=" +
        std::to_string(nc.num_layers));
  }
  if (options_.precision == Precision::kInt8 &&
      !HasReadyInt8Backends(next.get())) {
    return Status::InvalidArgument(
        "SwapModel: engine serves kInt8 but the next model has no frozen "
        "int8 backends");
  }
  if (split_enabled() &&
      !next->classifier()->backbone()->SupportsSplitEncode()) {
    return Status::InvalidArgument(
        "SwapModel: engine uses split encoding but the next model's "
        "backbone does not support it");
  }

  auto fresh = std::make_shared<const VersionedModel>(
      VersionedModel{std::move(next), cur->version + 1});
  model_.store(fresh, std::memory_order_release);
  // Drop old-version prefixes now rather than letting them age out of the
  // LRU: they can never be hit again (version-tagged keys) and would
  // otherwise squat on the byte budget.
  prefix_cache_.Clear();
  metrics_.RecordModelSwap(static_cast<int64_t>(fresh->version));
  return Status::OK();
}

uint64_t MatcherEngine::model_version() const {
  return CurrentModel()->version;
}

void MatcherEngine::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void MatcherEngine::Resume() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = false;
  work_cv_.notify_all();
}

void MatcherEngine::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    work_cv_.notify_all();
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

MetricsSnapshot MatcherEngine::Metrics() const {
  MetricsSnapshot s = metrics_.Snapshot(queue_depth());
  s.token_cache_bytes =
      cache_.resident_bytes() + entity_tokens_.resident_bytes();
  s.token_cache_evictions = cache_.evictions() + entity_tokens_.evictions();
  s.prefix_bytes = prefix_cache_.resident_bytes();
  s.prefix_evictions = prefix_cache_.evictions();
  return s;
}

std::string MatcherEngine::MetricsJson() const { return Metrics().ToJson(); }

int64_t MatcherEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

void MatcherEngine::ExpireQueuedLocked(Clock::time_point now) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->deadline <= now) {
      MatchResult r;
      r.status = Status::DeadlineExceeded("deadline passed while queued");
      r.queue_us = ElapsedUs(it->enqueued, now);
      r.total_us = r.queue_us;
      r.cache_hit = it->cache_hit;
      r.prefix_hit_query = it->prefix_hit_q;
      r.prefix_hit_candidate = it->prefix_hit_c;
      metrics_.RecordTimeout();
      it->promise.set_value(std::move(r));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void MatcherEngine::WorkerLoop(uint64_t worker_id) {
  // Per-worker Rng (the eval forward never consumes randomness, but the
  // Logits API takes one).
  Rng rng(0x5e7e + worker_id);
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || (!paused_ && !queue_.empty());
    });
    const Clock::time_point now = Clock::now();
    // Shutdown overrides pause: queued work is drained either way.
    if (!paused_ || shutdown_) ExpireQueuedLocked(now);
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }

    // The oldest request defines the bucket to serve and the flush clock.
    const int64_t bucket = queue_.front().bucket;
    const Clock::time_point flush_at =
        queue_.front().enqueued +
        std::chrono::microseconds(options_.max_wait_us);
    int64_t in_bucket = 0;
    for (const Request& r : queue_) {
      if (r.bucket == bucket && ++in_bucket >= options_.max_batch_size) break;
    }

    if (!shutdown_ && in_bucket < options_.max_batch_size && now < flush_at) {
      // Not full and not due: sleep until the flush deadline or the next
      // per-request deadline, whichever comes first (or a new submission).
      Clock::time_point wake = flush_at;
      for (const Request& r : queue_) wake = std::min(wake, r.deadline);
      work_cv_.wait_until(lock, wake);
      continue;
    }

    std::vector<Request> batch;
    batch.reserve(static_cast<size_t>(in_bucket));
    for (auto it = queue_.begin();
         it != queue_.end() &&
         static_cast<int64_t>(batch.size()) < options_.max_batch_size;) {
      if (it->bucket == bucket) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    lock.unlock();
    RunBatch(std::move(batch), &rng);
    lock.lock();
  }
}

void MatcherEngine::RunBatch(std::vector<Request> batch, Rng* rng) {
  if (split_enabled()) {
    RunBatchSplit(std::move(batch), rng);
    return;
  }
  const Clock::time_point formed = Clock::now();
  const int64_t b = static_cast<int64_t>(batch.size());
  EMX_TRACE_SPAN("serve.batch", [&] {
    return obs::KeyValues(
        {{"size", b},
         {"bucket", batch.empty() ? 0 : batch.front().bucket}});
  });

  // Pad only to the bucket top (rounded up from the longest member), not to
  // the engine-wide max_seq_len: short pairs never pay for long ones.
  int64_t longest = 1;
  for (const Request& r : batch) longest = std::max(longest, r.enc.length);
  const int64_t target_len = std::min(
      options_.max_seq_len,
      (longest + options_.bucket_width - 1) / options_.bucket_width *
          options_.bucket_width);

  models::Batch mb;
  mb.batch_size = b;
  mb.seq_len = target_len;
  mb.ids.reserve(static_cast<size_t>(b * target_len));
  mb.segment_ids.reserve(static_cast<size_t>(b * target_len));
  std::vector<float> pad_flags;
  pad_flags.reserve(static_cast<size_t>(b * target_len));
  for (const Request& r : batch) {
    // Cached encodings are padded to max_seq_len; the batch keeps only the
    // first target_len positions (>= every member's real length, so only
    // pad tokens are dropped and masked attention is unchanged).
    const auto& enc = r.enc.enc;
    mb.ids.insert(mb.ids.end(), enc.ids.begin(), enc.ids.begin() + target_len);
    mb.segment_ids.insert(mb.segment_ids.end(), enc.segment_ids.begin(),
                          enc.segment_ids.begin() + target_len);
    pad_flags.insert(pad_flags.end(), enc.attention_mask.begin(),
                     enc.attention_mask.begin() + target_len);
  }
  mb.attention_mask = models::Batch::MakeMask(pad_flags, b, target_len);

  // Every member snapshotted the same model (version is part of the
  // bucket); the batch holds it alive even if a swap lands mid-forward.
  const VersionedModel& model = *batch.front().model;
  NoGradGuard no_grad;
  // QuantMode is thread-local, so each worker pins the engine's precision
  // for the duration of its own forward.
  nn::QuantModeGuard quant(options_.precision == Precision::kInt8);
  Variable logits =
      model.matcher->classifier()->Logits(mb, /*train=*/false, rng);
  Tensor probs = ops::Softmax(logits.value());
  const Clock::time_point done = Clock::now();

  metrics_.RecordBatch(b);
  for (int64_t i = 0; i < b; ++i) {
    Request& r = batch[static_cast<size_t>(i)];
    MatchResult result;
    result.status = Status::OK();
    result.probability = probs[i * 2 + 1];
    result.is_match = result.probability >= 0.5;
    result.queue_us = ElapsedUs(r.enqueued, formed);
    result.total_us = ElapsedUs(r.enqueued, done);
    result.batch_size = b;
    result.cache_hit = r.cache_hit;
    result.model_version = model.version;
    metrics_.RecordCompletion(result.total_us);
    r.promise.set_value(std::move(result));
  }
}

void MatcherEngine::RunBatchSplit(std::vector<Request> batch, Rng* rng) {
  const Clock::time_point formed = Clock::now();
  const int64_t b = static_cast<int64_t>(batch.size());
  EMX_TRACE_SPAN("serve.batch_split", [&] {
    return obs::KeyValues(
        {{"size", b},
         {"bucket", batch.empty() ? 0 : batch.front().bucket}});
  });

  // Pad to the bucket top like the pair path. Pad positions hold zero
  // vectors instead of pad-token embeddings — both are blocked by the mask,
  // so real rows (and the CLS logits) never see the difference.
  int64_t longest = 1;
  for (const Request& r : batch) {
    longest = std::max(longest, r.len_q + r.len_c);
  }
  const int64_t target_len = std::min(
      options_.max_seq_len,
      (longest + options_.bucket_width - 1) / options_.bucket_width *
          options_.bucket_width);

  const VersionedModel& model = *batch.front().model;
  const int64_t h = model.matcher->classifier()->config().hidden;
  Tensor input = Tensor::Zeros({b, target_len, h});
  std::vector<float> pad_flags(static_cast<size_t>(b * target_len), 1.0f);
  for (int64_t i = 0; i < b; ++i) {
    const Request& r = batch[static_cast<size_t>(i)];
    float* row = input.data() + i * target_len * h;
    std::memcpy(row, r.prefix_q->data(),
                static_cast<size_t>(r.len_q * h) * sizeof(float));
    std::memcpy(row + r.len_q * h, r.prefix_c->data(),
                static_cast<size_t>(r.len_c * h) * sizeof(float));
    std::fill(pad_flags.begin() + i * target_len,
              pad_flags.begin() + i * target_len + r.len_q + r.len_c, 0.0f);
  }
  const Tensor mask = models::Batch::MakeMask(pad_flags, b, target_len);

  NoGradGuard no_grad;
  nn::QuantModeGuard quant(options_.precision == Precision::kInt8);
  Variable hidden = Variable::Constant(std::move(input));
  Variable logits = model.matcher->classifier()->LogitsFromHidden(
      hidden, mask, options_.split_layer, /*train=*/false, rng);
  Tensor probs = ops::Softmax(logits.value());
  const Clock::time_point done = Clock::now();

  metrics_.RecordBatch(b);
  for (int64_t i = 0; i < b; ++i) {
    Request& r = batch[static_cast<size_t>(i)];
    MatchResult result;
    result.status = Status::OK();
    result.probability = probs[i * 2 + 1];
    result.is_match = result.probability >= 0.5;
    result.queue_us = ElapsedUs(r.enqueued, formed);
    result.total_us = ElapsedUs(r.enqueued, done);
    result.batch_size = b;
    result.cache_hit = r.cache_hit;
    result.prefix_hit_query = r.prefix_hit_q;
    result.prefix_hit_candidate = r.prefix_hit_c;
    result.model_version = model.version;
    metrics_.RecordCompletion(result.total_us);
    r.promise.set_value(std::move(result));
  }
}

}  // namespace serve
}  // namespace emx
