#ifndef EMX_SERVE_ACTIVATION_CACHE_H_
#define EMX_SERVE_ACTIVATION_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "tensor/tensor.h"

namespace emx {
namespace serve {

/// Point-in-time counters for an ActivationCache.
struct ActivationCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t entries = 0;
  int64_t resident_bytes = 0;
};

/// Thread-safe byte-budgeted LRU cache of per-entity layer-k activation
/// tensors — the TokenizationCache design extended from token ids to
/// tensors. Because a cached prefix is ~seq_len * hidden floats (not a
/// handful of ints), the budget is expressed in bytes rather than entries:
/// inserting past `max_bytes` evicts least-recently-used entries until the
/// cache fits again, so operators size it like any other memory pool.
///
/// Values are handed out as shared_ptr<const Tensor>: eviction only drops
/// the cache's reference, so a prefix checked out by an in-flight request
/// stays valid even if it is evicted mid-request. On a miss the caller
/// computes the tensor *outside* the lock and Put()s it; two threads
/// missing on the same key may both encode, and the second insert wins the
/// LRU slot — wasted work, never inconsistency, since prefixes are pure
/// functions of the key (dropout is off on the prefix path).
class ActivationCache {
 public:
  /// `max_bytes` <= 0 disables caching (every Get misses, Put stores
  /// nothing). `evictions` / `resident_bytes` (optional) are obs hooks the
  /// cache updates under its own lock, so the owning engine's registry
  /// tracks `serve.prefix_cache.{evictions,bytes}` live.
  explicit ActivationCache(int64_t max_bytes,
                           obs::Counter* evictions = nullptr,
                           obs::Gauge* resident_bytes = nullptr);

  /// Returns the cached tensor for `key`, or null on miss.
  std::shared_ptr<const Tensor> Get(const std::string& key);

  /// Inserts `value` (unless the key is already resident — the first
  /// insert wins) and returns the resident tensor. Evicts LRU entries
  /// until the cache fits its byte budget; an entry larger than the whole
  /// budget is returned to the caller but not kept.
  std::shared_ptr<const Tensor> Put(const std::string& key, Tensor value);

  /// Drops every entry (hot-swap: cached prefixes belong to the previous
  /// model version). Checked-out shared_ptrs stay valid; hit/miss/eviction
  /// counters are cumulative and unaffected.
  void Clear();

  ActivationCacheStats Stats() const;
  int64_t size() const;
  int64_t resident_bytes() const;
  int64_t evictions() const;
  int64_t max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const Tensor> value;
    int64_t bytes = 0;
  };
  using EntryList = std::list<Entry>;

  static int64_t EntryBytes(const std::string& key, const Tensor& value);
  /// Caller holds mu_.
  void EvictToBudgetLocked();

  const int64_t max_bytes_;
  obs::Counter* eviction_counter_;  // may be null
  obs::Gauge* bytes_gauge_;         // may be null

  mutable std::mutex mu_;
  EntryList lru_;  // front = most recently used
  std::unordered_map<std::string, EntryList::iterator> index_;
  int64_t bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace serve
}  // namespace emx

#endif  // EMX_SERVE_ACTIVATION_CACHE_H_
