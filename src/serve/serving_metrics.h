#ifndef EMX_SERVE_SERVING_METRICS_H_
#define EMX_SERVE_SERVING_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/timer.h"

namespace emx {
namespace serve {

/// Linearly interpolated percentile over an ascending-sorted sample
/// (q in [0, 1], clamped). Empty input returns 0.
double Percentile(const std::vector<double>& sorted, double q);

/// Point-in-time view of the serving counters. All totals are cumulative
/// since engine construction; latencies are computed over a bounded window
/// of the most recent completions (see ServingMetrics).
struct MetricsSnapshot {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t timed_out = 0;
  int64_t rejected = 0;

  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  /// hits / (hits + misses); 0 when no lookups happened.
  double cache_hit_rate = 0;
  /// Tokenization-cache residency (pair cache + entity cache), for sizing
  /// cache_capacity from a live snapshot.
  int64_t token_cache_bytes = 0;
  int64_t token_cache_evictions = 0;

  /// Split-encoder prefix (activation) cache. Lookups are per entity
  /// segment — two per request on the split path; zero when
  /// EngineOptions::split_layer is disabled.
  int64_t prefix_hits = 0;
  int64_t prefix_misses = 0;
  /// hits / (hits + misses); 0 when no lookups happened.
  double prefix_hit_rate = 0;
  int64_t prefix_evictions = 0;
  /// Resident bytes of cached activations, for sizing
  /// EngineOptions::activation_cache_bytes.
  int64_t prefix_bytes = 0;

  int64_t batches = 0;
  double mean_batch_size = 0;
  /// histogram[s] = number of micro-batches served with exactly s requests,
  /// for s in [0, max_batch_size]. Slot 0 is real (an empty wakeup) and is
  /// emitted like every other slot.
  std::vector<int64_t> batch_size_histogram;
  /// Batches larger than max_batch_size — should be 0; nonzero means the
  /// batcher violated its own limit and must be visible, not clamped away.
  int64_t batch_overflow = 0;

  int64_t queue_depth = 0;
  int64_t max_queue_depth = 0;

  /// Hot-swap state: how many times SwapModel has published a new model,
  /// and the version currently serving (1 = the construction-time model).
  int64_t model_swaps = 0;
  int64_t model_version = 1;

  double uptime_seconds = 0;
  /// completed / uptime.
  double throughput_pairs_per_sec = 0;

  /// Submit-to-completion latency percentiles over the recent window, µs.
  double p50_latency_us = 0;
  double p95_latency_us = 0;
  double p99_latency_us = 0;
  double max_latency_us = 0;

  /// Serializes every field as a flat JSON object. All doubles are routed
  /// through obs::AppendJsonDouble, so the output strict-parses even if a
  /// field holds nan/inf.
  std::string ToJson() const;
};

/// Thread-safe counters for the matcher engine, built on the emx::obs
/// metrics primitives: each ServingMetrics owns a private
/// obs::MetricsRegistry (engines must not share counters), with the
/// latency percentile ring kept locally because percentiles need raw
/// samples, not fixed buckets. Latencies are kept in a fixed-size ring
/// (most recent `kLatencyWindow` completions) so a long-running server
/// never grows.
///
/// The ring is lock-free: completions claim a slot with one relaxed
/// fetch_add and store the sample with one relaxed atomic store, so the
/// completion hot path never takes a mutex and is never blocked by a
/// Snapshot() copying the 8192-entry window (which it previously did,
/// under the same lock, on every snapshot). A snapshot that races a
/// completion reads each slot atomically and sees either the old or the
/// new sample for that slot — both are valid recent completions, which is
/// all percentiles over a sliding window promise.
class ServingMetrics {
 public:
  explicit ServingMetrics(int64_t max_batch_size);

  void RecordSubmitted(int64_t queue_depth_after);
  void RecordRejected();
  void RecordTimeout();
  /// One micro-batch of `batch_size` requests was served.
  void RecordBatch(int64_t batch_size);
  /// One request finished OK, `total_us` after submission.
  void RecordCompletion(double total_us);
  void RecordCacheLookup(bool hit);
  /// One activation-cache (prefix) lookup on the split path.
  void RecordPrefixLookup(bool hit);
  /// Publishes the tokenization caches' resident bytes as the
  /// serve.token_cache.bytes gauge.
  void RecordTokenCacheBytes(int64_t bytes);
  /// One SwapModel publish; `new_version` becomes the serving version.
  void RecordModelSwap(int64_t new_version);

  /// `queue_depth` is the current depth sampled by the caller.
  MetricsSnapshot Snapshot(int64_t queue_depth) const;

  /// The backing registry — the shared obs export path
  /// (registry()->ToJson() carries the same counters as Snapshot()).
  obs::MetricsRegistry* registry() { return &registry_; }

 private:
  static constexpr size_t kLatencyWindow = 8192;

  obs::MetricsRegistry registry_;
  obs::Counter* submitted_;
  obs::Counter* completed_;
  obs::Counter* timed_out_;
  obs::Counter* rejected_;
  obs::Counter* cache_hits_;
  obs::Counter* cache_misses_;
  obs::Counter* prefix_hits_;
  obs::Counter* prefix_misses_;
  obs::Gauge* token_cache_bytes_;
  obs::Gauge* max_queue_depth_;
  obs::Counter* model_swaps_;
  obs::Gauge* model_version_;
  obs::Histogram* batch_hist_;  // exact integer buckets [0, max_batch_size]

  /// Lock-free latency ring: slot i of the k-th completion is k %
  /// kLatencyWindow. latency_ops_ counts completions ever recorded; the
  /// valid window is min(latency_ops_, kLatencyWindow) samples.
  std::unique_ptr<std::atomic<double>[]> latencies_;
  std::atomic<uint64_t> latency_ops_{0};
  Timer uptime_;
};

}  // namespace serve
}  // namespace emx

#endif  // EMX_SERVE_SERVING_METRICS_H_
