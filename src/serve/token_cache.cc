#include "serve/token_cache.h"

#include <utility>

#include "util/logging.h"

namespace emx {
namespace serve {
namespace {

/// 0x1f (unit separator) cannot appear in tokenizer input text, so the
/// joined key is collision-free.
std::string MakeKey(std::string_view a, std::string_view b) {
  std::string key;
  key.reserve(a.size() + b.size() + 1);
  key.append(a);
  key.push_back('\x1f');
  key.append(b);
  return key;
}

}  // namespace

TokenizationCache::TokenizationCache(const tokenizers::Tokenizer* tokenizer,
                                     int64_t capacity, int64_t max_seq_len)
    : tokenizer_(tokenizer), capacity_(capacity), max_seq_len_(max_seq_len) {
  EMX_CHECK(tokenizer != nullptr);
  EMX_CHECK_GT(max_seq_len, 0);
}

CachedEncoding TokenizationCache::Get(std::string_view a, std::string_view b,
                                      bool* hit) {
  if (capacity_ <= 0) {
    // Degenerate capacity disables caching: every lookup tokenizes fresh
    // and counts as a miss; nothing is ever stored.
    if (hit != nullptr) *hit = false;
    CachedEncoding fresh;
    fresh.enc = tokenizer_->EncodePair(a, b, max_seq_len_);
    for (float pad : fresh.enc.attention_mask) {
      if (pad == 0.0f) ++fresh.length;
    }
    return fresh;
  }
  std::string key = MakeKey(a, b);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // promote to front
      if (hit != nullptr) *hit = true;
      return it->second->value;
    }
  }
  if (hit != nullptr) *hit = false;

  CachedEncoding fresh;
  fresh.enc = tokenizer_->EncodePair(a, b, max_seq_len_);
  // attention_mask is 1.0 at padded positions; everything else is real.
  for (float pad : fresh.enc.attention_mask) {
    if (pad == 0.0f) ++fresh.length;
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Lost a race with another miss on the same key; keep the winner.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->value;
  }
  lru_.push_front(Entry{std::move(key), fresh, 0});
  lru_.front().bytes = EntryBytes(lru_.front());
  bytes_ += lru_.front().bytes;
  index_.emplace(lru_.front().key, lru_.begin());
  while (static_cast<int64_t>(lru_.size()) > capacity_) {
    bytes_ -= lru_.back().bytes;
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  return fresh;
}

int64_t TokenizationCache::EntryBytes(const Entry& e) {
  constexpr int64_t kNodeOverhead = 160;
  return static_cast<int64_t>(e.key.size()) +
         static_cast<int64_t>(e.value.enc.ids.size() * sizeof(int64_t)) +
         static_cast<int64_t>(e.value.enc.segment_ids.size() *
                              sizeof(int64_t)) +
         static_cast<int64_t>(e.value.enc.attention_mask.size() *
                              sizeof(float)) +
         kNodeOverhead;
}

int64_t TokenizationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(lru_.size());
}

int64_t TokenizationCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

int64_t TokenizationCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

EntityTokenCache::EntityTokenCache(const tokenizers::Tokenizer* tokenizer,
                                   int64_t capacity)
    : tokenizer_(tokenizer), capacity_(capacity) {
  EMX_CHECK(tokenizer != nullptr);
}

std::shared_ptr<const std::vector<int64_t>> EntityTokenCache::Get(
    std::string_view text, bool* hit) {
  if (capacity_ <= 0) {
    if (hit != nullptr) *hit = false;
    return std::make_shared<const std::vector<int64_t>>(
        tokenizer_->Encode(text));
  }
  std::string key(text);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      if (hit != nullptr) *hit = true;
      return it->second->value;
    }
  }
  if (hit != nullptr) *hit = false;

  auto fresh =
      std::make_shared<const std::vector<int64_t>>(tokenizer_->Encode(text));

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Lost a race with another miss on the same key; keep the winner.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->value;
  }
  constexpr int64_t kNodeOverhead = 160;
  const int64_t bytes =
      static_cast<int64_t>(key.size()) +
      static_cast<int64_t>(fresh->size() * sizeof(int64_t)) + kNodeOverhead;
  lru_.push_front(Entry{std::move(key), fresh, bytes});
  bytes_ += bytes;
  index_.emplace(lru_.front().key, lru_.begin());
  while (static_cast<int64_t>(lru_.size()) > capacity_) {
    bytes_ -= lru_.back().bytes;
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  return fresh;
}

int64_t EntityTokenCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(lru_.size());
}

int64_t EntityTokenCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

int64_t EntityTokenCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace serve
}  // namespace emx
