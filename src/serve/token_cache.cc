#include "serve/token_cache.h"

#include <utility>

#include "util/logging.h"

namespace emx {
namespace serve {
namespace {

/// 0x1f (unit separator) cannot appear in tokenizer input text, so the
/// joined key is collision-free.
std::string MakeKey(std::string_view a, std::string_view b) {
  std::string key;
  key.reserve(a.size() + b.size() + 1);
  key.append(a);
  key.push_back('\x1f');
  key.append(b);
  return key;
}

}  // namespace

TokenizationCache::TokenizationCache(const tokenizers::Tokenizer* tokenizer,
                                     int64_t capacity, int64_t max_seq_len)
    : tokenizer_(tokenizer), capacity_(capacity), max_seq_len_(max_seq_len) {
  EMX_CHECK(tokenizer != nullptr);
  EMX_CHECK_GT(max_seq_len, 0);
}

CachedEncoding TokenizationCache::Get(std::string_view a, std::string_view b,
                                      bool* hit) {
  if (capacity_ <= 0) {
    // Degenerate capacity disables caching: every lookup tokenizes fresh
    // and counts as a miss; nothing is ever stored.
    if (hit != nullptr) *hit = false;
    CachedEncoding fresh;
    fresh.enc = tokenizer_->EncodePair(a, b, max_seq_len_);
    for (float pad : fresh.enc.attention_mask) {
      if (pad == 0.0f) ++fresh.length;
    }
    return fresh;
  }
  std::string key = MakeKey(a, b);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // promote to front
      if (hit != nullptr) *hit = true;
      return it->second->value;
    }
  }
  if (hit != nullptr) *hit = false;

  CachedEncoding fresh;
  fresh.enc = tokenizer_->EncodePair(a, b, max_seq_len_);
  // attention_mask is 1.0 at padded positions; everything else is real.
  for (float pad : fresh.enc.attention_mask) {
    if (pad == 0.0f) ++fresh.length;
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Lost a race with another miss on the same key; keep the winner.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->value;
  }
  lru_.push_front(Entry{std::move(key), fresh});
  index_.emplace(lru_.front().key, lru_.begin());
  while (static_cast<int64_t>(lru_.size()) > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return fresh;
}

int64_t TokenizationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(lru_.size());
}

}  // namespace serve
}  // namespace emx
