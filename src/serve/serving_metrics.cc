#include "serve/serving_metrics.h"

#include <algorithm>

#include "obs/json.h"

namespace emx {
namespace serve {

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted[0];
  q = std::min(std::max(q, 0.0), 1.0);
  // Linear interpolation between the two closest ranks. The previous
  // nearest-rank + 0.5 rounding jumped straight to the upper sample — for
  // a 2-element buffer, p50 returned the max.
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

namespace {

void AppendField(std::string* out, const char* name, double value,
                 bool* first) {
  if (!*first) *out += ", ";
  *first = false;
  obs::AppendJsonString(out, name);
  *out += ": ";
  // AppendJsonDouble substitutes 0 for nan/inf — "%.3f" would emit the
  // bare tokens and break every strict consumer of the snapshot.
  obs::AppendJsonDouble(out, value, 3);
}

void AppendField(std::string* out, const char* name, int64_t value,
                 bool* first) {
  if (!*first) *out += ", ";
  *first = false;
  obs::AppendJsonString(out, name);
  *out += ": " + std::to_string(value);
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  AppendField(&out, "submitted", submitted, &first);
  AppendField(&out, "completed", completed, &first);
  AppendField(&out, "timed_out", timed_out, &first);
  AppendField(&out, "rejected", rejected, &first);
  AppendField(&out, "cache_hits", cache_hits, &first);
  AppendField(&out, "cache_misses", cache_misses, &first);
  AppendField(&out, "cache_hit_rate", cache_hit_rate, &first);
  AppendField(&out, "token_cache_bytes", token_cache_bytes, &first);
  AppendField(&out, "token_cache_evictions", token_cache_evictions, &first);
  AppendField(&out, "prefix_hits", prefix_hits, &first);
  AppendField(&out, "prefix_misses", prefix_misses, &first);
  AppendField(&out, "prefix_hit_rate", prefix_hit_rate, &first);
  AppendField(&out, "prefix_evictions", prefix_evictions, &first);
  AppendField(&out, "prefix_bytes", prefix_bytes, &first);
  AppendField(&out, "batches", batches, &first);
  AppendField(&out, "mean_batch_size", mean_batch_size, &first);
  AppendField(&out, "batch_overflow", batch_overflow, &first);
  AppendField(&out, "queue_depth", queue_depth, &first);
  AppendField(&out, "max_queue_depth", max_queue_depth, &first);
  AppendField(&out, "model_swaps", model_swaps, &first);
  AppendField(&out, "model_version", model_version, &first);
  AppendField(&out, "uptime_seconds", uptime_seconds, &first);
  AppendField(&out, "throughput_pairs_per_sec", throughput_pairs_per_sec,
              &first);
  AppendField(&out, "p50_latency_us", p50_latency_us, &first);
  AppendField(&out, "p95_latency_us", p95_latency_us, &first);
  AppendField(&out, "p99_latency_us", p99_latency_us, &first);
  AppendField(&out, "max_latency_us", max_latency_us, &first);
  out += ", \"batch_size_histogram\": [";
  for (size_t s = 0; s < batch_size_histogram.size(); ++s) {
    if (s > 0) out += ", ";
    out += std::to_string(batch_size_histogram[s]);
  }
  out += "]}";
  return out;
}

ServingMetrics::ServingMetrics(int64_t max_batch_size) {
  submitted_ = registry_.GetCounter("serve.submitted");
  completed_ = registry_.GetCounter("serve.completed");
  timed_out_ = registry_.GetCounter("serve.timed_out");
  rejected_ = registry_.GetCounter("serve.rejected");
  cache_hits_ = registry_.GetCounter("serve.cache_hits");
  cache_misses_ = registry_.GetCounter("serve.cache_misses");
  prefix_hits_ = registry_.GetCounter("serve.prefix_cache.hits");
  prefix_misses_ = registry_.GetCounter("serve.prefix_cache.misses");
  token_cache_bytes_ = registry_.GetGauge("serve.token_cache.bytes");
  max_queue_depth_ = registry_.GetGauge("serve.max_queue_depth");
  model_swaps_ = registry_.GetCounter("serve.model_swaps");
  model_version_ = registry_.GetGauge("serve.model_version");
  model_version_->Set(1);
  // Bounds {0, 1, ..., max_batch_size}: integer batch sizes land exactly on
  // a bound, so bucket s counts batches of exactly s requests; anything
  // larger is overflow, not clamped into the top slot.
  batch_hist_ = registry_.GetHistogram(
      "serve.batch_size",
      obs::LinearBuckets(0, 1, static_cast<int>(max_batch_size) + 1));
  latencies_ = std::make_unique<std::atomic<double>[]>(kLatencyWindow);
  for (size_t i = 0; i < kLatencyWindow; ++i) {
    latencies_[i].store(0, std::memory_order_relaxed);
  }
}

void ServingMetrics::RecordSubmitted(int64_t queue_depth_after) {
  submitted_->Add(1);
  max_queue_depth_->Max(static_cast<double>(queue_depth_after));
}

void ServingMetrics::RecordRejected() { rejected_->Add(1); }

void ServingMetrics::RecordTimeout() { timed_out_->Add(1); }

void ServingMetrics::RecordBatch(int64_t batch_size) {
  batch_hist_->Record(static_cast<double>(std::max<int64_t>(0, batch_size)));
}

void ServingMetrics::RecordCompletion(double total_us) {
  completed_->Add(1);
  // Lock-free: claim a slot, store the sample. Concurrent snapshots read
  // the slot atomically and see the old or the new sample — both valid.
  const uint64_t op = latency_ops_.fetch_add(1, std::memory_order_relaxed);
  latencies_[op % kLatencyWindow].store(total_us, std::memory_order_relaxed);
}

void ServingMetrics::RecordCacheLookup(bool hit) {
  (hit ? cache_hits_ : cache_misses_)->Add(1);
}

void ServingMetrics::RecordPrefixLookup(bool hit) {
  (hit ? prefix_hits_ : prefix_misses_)->Add(1);
}

void ServingMetrics::RecordTokenCacheBytes(int64_t bytes) {
  token_cache_bytes_->Set(static_cast<double>(bytes));
}

void ServingMetrics::RecordModelSwap(int64_t new_version) {
  model_swaps_->Add(1);
  model_version_->Set(static_cast<double>(new_version));
}

MetricsSnapshot ServingMetrics::Snapshot(int64_t queue_depth) const {
  MetricsSnapshot s;
  s.submitted = submitted_->Value();
  s.completed = completed_->Value();
  s.timed_out = timed_out_->Value();
  s.rejected = rejected_->Value();
  s.cache_hits = cache_hits_->Value();
  s.cache_misses = cache_misses_->Value();
  const int64_t lookups = s.cache_hits + s.cache_misses;
  s.cache_hit_rate =
      lookups > 0 ? static_cast<double>(s.cache_hits) / lookups : 0;
  s.prefix_hits = prefix_hits_->Value();
  s.prefix_misses = prefix_misses_->Value();
  const int64_t prefix_lookups = s.prefix_hits + s.prefix_misses;
  s.prefix_hit_rate =
      prefix_lookups > 0 ? static_cast<double>(s.prefix_hits) / prefix_lookups
                         : 0;
  // prefix_bytes / prefix_evictions / token_cache_* are cache-resident
  // state, filled in by MatcherEngine::Metrics() from the cache objects.
  s.batches = batch_hist_->count();
  s.mean_batch_size = batch_hist_->mean();
  s.batch_size_histogram.resize(batch_hist_->bounds().size());
  for (size_t i = 0; i < s.batch_size_histogram.size(); ++i) {
    s.batch_size_histogram[i] = batch_hist_->bucket_count(i);
  }
  s.batch_overflow = batch_hist_->overflow();
  s.queue_depth = queue_depth;
  s.max_queue_depth = static_cast<int64_t>(max_queue_depth_->Value());
  s.model_swaps = model_swaps_->Value();
  s.model_version = static_cast<int64_t>(model_version_->Value());
  s.uptime_seconds = uptime_.ElapsedSeconds();
  s.throughput_pairs_per_sec =
      s.uptime_seconds > 0 ? s.completed / s.uptime_seconds : 0;
  // Copy the window with per-slot atomic loads — no lock, so concurrent
  // RecordCompletion calls are never stalled behind this copy.
  const uint64_t ops = latency_ops_.load(std::memory_order_relaxed);
  const size_t window_size =
      static_cast<size_t>(std::min<uint64_t>(ops, kLatencyWindow));
  std::vector<double> window(window_size);
  for (size_t i = 0; i < window_size; ++i) {
    window[i] = latencies_[i].load(std::memory_order_relaxed);
  }
  std::sort(window.begin(), window.end());
  s.p50_latency_us = Percentile(window, 0.50);
  s.p95_latency_us = Percentile(window, 0.95);
  s.p99_latency_us = Percentile(window, 0.99);
  s.max_latency_us = window.empty() ? 0 : window.back();
  return s;
}

}  // namespace serve
}  // namespace emx
