#include "serve/serving_metrics.h"

#include <algorithm>
#include <cstdio>

namespace emx {
namespace serve {

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted[0];
  q = std::min(std::max(q, 0.0), 1.0);
  // Linear interpolation between the two closest ranks. The previous
  // nearest-rank + 0.5 rounding jumped straight to the upper sample — for
  // a 2-element buffer, p50 returned the max.
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

namespace {

void AppendField(std::string* out, const char* name, double value,
                 bool* first) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\": %.3f", *first ? "" : ", ", name,
                value);
  *out += buf;
  *first = false;
}

void AppendField(std::string* out, const char* name, int64_t value,
                 bool* first) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\": %lld", *first ? "" : ", ", name,
                static_cast<long long>(value));
  *out += buf;
  *first = false;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  AppendField(&out, "submitted", submitted, &first);
  AppendField(&out, "completed", completed, &first);
  AppendField(&out, "timed_out", timed_out, &first);
  AppendField(&out, "rejected", rejected, &first);
  AppendField(&out, "cache_hits", cache_hits, &first);
  AppendField(&out, "cache_misses", cache_misses, &first);
  AppendField(&out, "cache_hit_rate", cache_hit_rate, &first);
  AppendField(&out, "batches", batches, &first);
  AppendField(&out, "mean_batch_size", mean_batch_size, &first);
  AppendField(&out, "queue_depth", queue_depth, &first);
  AppendField(&out, "max_queue_depth", max_queue_depth, &first);
  AppendField(&out, "uptime_seconds", uptime_seconds, &first);
  AppendField(&out, "throughput_pairs_per_sec", throughput_pairs_per_sec,
              &first);
  AppendField(&out, "p50_latency_us", p50_latency_us, &first);
  AppendField(&out, "p95_latency_us", p95_latency_us, &first);
  AppendField(&out, "p99_latency_us", p99_latency_us, &first);
  AppendField(&out, "max_latency_us", max_latency_us, &first);
  out += ", \"batch_size_histogram\": [";
  for (size_t s = 1; s < batch_size_histogram.size(); ++s) {
    if (s > 1) out += ", ";
    out += std::to_string(batch_size_histogram[s]);
  }
  out += "]}";
  return out;
}

ServingMetrics::ServingMetrics(int64_t max_batch_size)
    : batch_hist_(static_cast<size_t>(max_batch_size) + 1, 0) {
  latencies_.resize(kLatencyWindow, 0);
}

void ServingMetrics::RecordSubmitted(int64_t queue_depth_after) {
  std::lock_guard<std::mutex> lock(mu_);
  ++submitted_;
  max_queue_depth_ = std::max(max_queue_depth_, queue_depth_after);
}

void ServingMetrics::RecordRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++rejected_;
}

void ServingMetrics::RecordTimeout() {
  std::lock_guard<std::mutex> lock(mu_);
  ++timed_out_;
}

void ServingMetrics::RecordBatch(int64_t batch_size) {
  std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  batched_requests_ += batch_size;
  const size_t slot = std::min(batch_hist_.size() - 1,
                               static_cast<size_t>(std::max<int64_t>(0, batch_size)));
  ++batch_hist_[slot];
}

void ServingMetrics::RecordCompletion(double total_us) {
  std::lock_guard<std::mutex> lock(mu_);
  ++completed_;
  latencies_[latency_next_] = total_us;
  latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  latency_count_ = std::min(latency_count_ + 1, kLatencyWindow);
}

void ServingMetrics::RecordCacheLookup(bool hit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (hit) {
    ++cache_hits_;
  } else {
    ++cache_misses_;
  }
}

MetricsSnapshot ServingMetrics::Snapshot(int64_t queue_depth) const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.timed_out = timed_out_;
  s.rejected = rejected_;
  s.cache_hits = cache_hits_;
  s.cache_misses = cache_misses_;
  const int64_t lookups = cache_hits_ + cache_misses_;
  s.cache_hit_rate =
      lookups > 0 ? static_cast<double>(cache_hits_) / lookups : 0;
  s.batches = batches_;
  s.mean_batch_size =
      batches_ > 0 ? static_cast<double>(batched_requests_) / batches_ : 0;
  s.batch_size_histogram = batch_hist_;
  s.queue_depth = queue_depth;
  s.max_queue_depth = max_queue_depth_;
  s.uptime_seconds = uptime_.ElapsedSeconds();
  s.throughput_pairs_per_sec =
      s.uptime_seconds > 0 ? completed_ / s.uptime_seconds : 0;
  std::vector<double> window(latencies_.begin(),
                             latencies_.begin() + latency_count_);
  std::sort(window.begin(), window.end());
  s.p50_latency_us = Percentile(window, 0.50);
  s.p95_latency_us = Percentile(window, 0.95);
  s.p99_latency_us = Percentile(window, 0.99);
  s.max_latency_us = window.empty() ? 0 : window.back();
  return s;
}

}  // namespace serve
}  // namespace emx
