#ifndef EMX_CORE_ENTITY_MATCHER_H_
#define EMX_CORE_ENTITY_MATCHER_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "data/record.h"
#include "eval/metrics.h"
#include "models/classifier.h"
#include "pretrain/model_zoo.h"
#include "tokenizers/tokenizer.h"
#include "util/rng.h"
#include "util/status.h"

namespace emx {
namespace core {

/// Fine-tuning hyper-parameters (paper Section 5.2.2: Adam with a linear
/// learning-rate schedule, following BERT-style classification practice).
struct FineTuneOptions {
  int64_t epochs = 15;
  int64_t batch_size = 16;
  float learning_rate = 3e-4f;
  /// Warmup fraction of total steps for the linear schedule.
  double warmup_fraction = 0.1;
  /// Token budget per pair; the paper sizes this per dataset (128-265 for
  /// the originals; smaller here to match the scaled models).
  int64_t max_seq_len = 48;
  /// Dropout used during fine-tuning (the backbone keeps its own rate when
  /// negative).
  float dropout = 0.1f;
  /// Oversample positive pairs so each epoch is roughly class-balanced
  /// (EM datasets have 10-25% positives; DeepMatcher applies the same
  /// positive weighting). Disable to train on the raw distribution.
  bool balance_classes = true;
  uint64_t seed = 2020;
};

/// One row of a fine-tuning trajectory: the paper's Figures 10-14 plot
/// test_f1 against epoch; Table 6 reports seconds per epoch — here with an
/// attributed phase breakdown (tokenize/forward/backward/optimizer sum to
/// ~`seconds`; eval time is reported separately) plus the training-health
/// signals every run should log (tokens/sec, grad norm, LR).
struct EpochRecord {
  int64_t epoch = 0;  // 0 = zero-shot (before any fine-tuning)
  double train_loss = 0;
  double test_f1 = 0;
  double seconds = 0;

  /// Training tokens consumed per wall-clock second of the epoch.
  double tokens_per_sec = 0;
  /// L2 norm over all parameter gradients, sampled on the epoch's last
  /// batch (after Backward, before the optimizer step).
  double grad_norm = 0;
  /// Learning rate of the epoch's last step.
  double learning_rate = 0;

  /// Phase attribution of `seconds` (Table 6 with a breakdown).
  double tokenize_seconds = 0;
  double forward_seconds = 0;
  double backward_seconds = 0;
  double optimizer_seconds = 0;
  /// Test-set evaluation (outside `seconds`; only when evaluated).
  double eval_seconds = 0;
};

/// The library's primary public API: transformer-based entity matching as
/// in the paper. Wraps a pre-trained backbone + matching tokenizer + the
/// classification head, and exposes fine-tuning on an EmDataset, paired
/// prediction, and single-pair matching.
///
///   auto bundle = pretrain::GetPretrained(Architecture::kRoberta, zoo);
///   EntityMatcher matcher(std::move(bundle.value()));
///   matcher.FineTune(dataset, options);
///   bool same = matcher.Match("iphone xs 64gb silver",
///                             "apple iphone xs (64 gb, silver)");
class EntityMatcher {
 public:
  /// Takes ownership of a pre-trained bundle from the model zoo.
  explicit EntityMatcher(pretrain::PretrainedBundle bundle,
                         uint64_t head_seed = 99);

  /// Fine-tunes on dataset.train. When `eval_each_epoch` is set, the
  /// returned series contains one record per epoch including the epoch-0
  /// zero-shot score (the paper's figure format); otherwise only the final
  /// epoch is recorded.
  std::vector<EpochRecord> FineTune(const data::EmDataset& dataset,
                                    const FineTuneOptions& options,
                                    bool eval_each_epoch = false);

  /// Predicted labels for arbitrary pairs of the dataset's schema.
  std::vector<int64_t> Predict(const data::EmDataset& dataset,
                               const std::vector<data::RecordPair>& pairs);

  /// Precision/recall/F1 on a split.
  eval::PrfScores Evaluate(const data::EmDataset& dataset,
                           const std::vector<data::RecordPair>& pairs);

  /// Match decision for two free-text entity descriptions.
  bool Match(std::string_view text_a, std::string_view text_b);
  /// P(match) for two free-text entity descriptions.
  double MatchProbability(std::string_view text_a, std::string_view text_b);
  /// P(match) for a batch of free-text pairs, one grad-free forward per
  /// internal slice — the bulk path the serving engine and the evaluation
  /// benches share.
  std::vector<double> MatchProbabilities(
      const std::vector<std::string>& texts_a,
      const std::vector<std::string>& texts_b);

  models::Architecture arch() const {
    return classifier_->config().arch;
  }
  const char* arch_name() const {
    return models::ArchitectureName(arch());
  }
  const tokenizers::Tokenizer& tokenizer() const { return *tokenizer_; }
  models::SequencePairClassifier* classifier() { return classifier_.get(); }

  /// Token budget used by the prediction paths (FineTune overwrites it with
  /// the fine-tuning budget; serving engines may pin their own).
  int64_t eval_max_seq_len() const { return eval_max_seq_len_; }
  void set_eval_max_seq_len(int64_t n) { eval_max_seq_len_ = n; }

  /// Persists / restores all weights (backbone + head).
  Status Save(const std::string& path);
  Status Load(const std::string& path);

  /// Builds a model batch from serialized text pairs (exposed for tests).
  models::Batch BuildBatch(const std::vector<std::string>& texts_a,
                           const std::vector<std::string>& texts_b,
                           int64_t max_seq_len) const;

 private:
  std::unique_ptr<tokenizers::Tokenizer> tokenizer_;
  std::unique_ptr<models::SequencePairClassifier> classifier_;
  int64_t eval_max_seq_len_ = 48;
  Rng rng_;
};

}  // namespace core
}  // namespace emx

#endif  // EMX_CORE_ENTITY_MATCHER_H_
