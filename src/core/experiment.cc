#include "core/experiment.h"

#include <algorithm>

#include "eval/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace emx {
namespace core {

ArchSeries RunFineTuneSeries(models::Architecture arch, data::DatasetId dataset,
                             const ExperimentOptions& options) {
  data::EmDataset ds = data::GenerateDataset(dataset, options.dataset);

  // One F1 trajectory per run: [epochs + 1] (epoch 0 = zero-shot).
  std::vector<std::vector<double>> trajectories;
  std::vector<double> epoch_seconds;
  std::vector<double> tokenize_seconds, forward_seconds, backward_seconds,
      optimizer_seconds, tokens_per_sec;

  for (int64_t run = 0; run < options.runs; ++run) {
    auto bundle = pretrain::GetPretrained(arch, options.zoo);
    EMX_CHECK(bundle.ok()) << bundle.status().ToString();
    EntityMatcher matcher(std::move(bundle).value(),
                          options.run_seed_base + static_cast<uint64_t>(run));
    FineTuneOptions ft = options.fine_tune;
    ft.seed = options.run_seed_base + static_cast<uint64_t>(run) * 7919;
    auto records = matcher.FineTune(ds, ft, /*eval_each_epoch=*/true);

    std::vector<double> f1s;
    for (const auto& r : records) {
      f1s.push_back(r.test_f1);
      if (r.epoch > 0) {
        epoch_seconds.push_back(r.seconds);
        tokenize_seconds.push_back(r.tokenize_seconds);
        forward_seconds.push_back(r.forward_seconds);
        backward_seconds.push_back(r.backward_seconds);
        optimizer_seconds.push_back(r.optimizer_seconds);
        tokens_per_sec.push_back(r.tokens_per_sec);
      }
    }
    trajectories.push_back(std::move(f1s));
  }

  ArchSeries out;
  out.arch = arch;
  const size_t epochs = trajectories[0].size();
  for (size_t e = 0; e < epochs; ++e) {
    std::vector<double> vals;
    for (const auto& t : trajectories) vals.push_back(t[e]);
    auto stats = eval::MeanStddev(vals);
    out.f1_mean.push_back(stats.mean);
    out.f1_stddev.push_back(stats.stddev);
  }
  out.seconds_per_epoch = eval::MeanStddev(epoch_seconds).mean;
  out.tokenize_seconds_per_epoch = eval::MeanStddev(tokenize_seconds).mean;
  out.forward_seconds_per_epoch = eval::MeanStddev(forward_seconds).mean;
  out.backward_seconds_per_epoch = eval::MeanStddev(backward_seconds).mean;
  out.optimizer_seconds_per_epoch = eval::MeanStddev(optimizer_seconds).mean;
  out.tokens_per_sec = eval::MeanStddev(tokens_per_sec).mean;
  out.best_f1 = *std::max_element(out.f1_mean.begin(), out.f1_mean.end());
  return out;
}

std::vector<ArchSeries> RunAllArchitectures(data::DatasetId dataset,
                                            const ExperimentOptions& options) {
  std::vector<ArchSeries> all;
  for (auto arch : {models::Architecture::kBert, models::Architecture::kDistilBert,
                    models::Architecture::kRoberta, models::Architecture::kXlnet}) {
    all.push_back(RunFineTuneSeries(arch, dataset, options));
  }
  return all;
}

std::string FormatFigure(const std::string& title,
                         const std::vector<ArchSeries>& series) {
  std::string out = title + "\n";
  out += StrFormat("%-7s", "epoch");
  for (const auto& s : series) {
    out += StrFormat("%12s", models::ArchitectureName(s.arch));
  }
  out += "\n";
  const size_t epochs = series.empty() ? 0 : series[0].f1_mean.size();
  for (size_t e = 0; e < epochs; ++e) {
    out += StrFormat("%-7zu", e);
    for (const auto& s : series) {
      out += StrFormat("%12.1f", s.f1_mean[e] * 100.0);
    }
    out += "\n";
  }
  return out;
}

}  // namespace core
}  // namespace emx
