#include "core/entity_matcher.h"

#include <algorithm>
#include <cmath>

#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"
#include "util/timer.h"

namespace emx {
namespace core {

namespace ag = autograd;

namespace {

/// L2 norm over every parameter gradient (the scalar every training run
/// should watch for divergence/vanishing). Called after Backward, before
/// the optimizer step.
double GradL2Norm(const std::vector<nn::NamedParam>& params) {
  double sum_sq = 0;
  for (const auto& p : params) {
    if (!p.var.requires_grad()) continue;
    const Tensor& g = p.var.grad();
    const float* pg = g.data();
    for (int64_t i = 0; i < g.size(); ++i) {
      sum_sq += static_cast<double>(pg[i]) * static_cast<double>(pg[i]);
    }
  }
  return std::sqrt(sum_sq);
}

}  // namespace

EntityMatcher::EntityMatcher(pretrain::PretrainedBundle bundle,
                             uint64_t head_seed)
    : tokenizer_(std::move(bundle.tokenizer)), rng_(head_seed) {
  Rng head_rng(head_seed);
  classifier_ = std::make_unique<models::SequencePairClassifier>(
      std::move(bundle.model), &head_rng);
}

models::Batch EntityMatcher::BuildBatch(const std::vector<std::string>& texts_a,
                                        const std::vector<std::string>& texts_b,
                                        int64_t max_seq_len) const {
  EMX_CHECK_EQ(texts_a.size(), texts_b.size());
  const int64_t b = static_cast<int64_t>(texts_a.size());
  models::Batch batch;
  batch.batch_size = b;
  batch.seq_len = max_seq_len;
  std::vector<float> pad_flags;
  pad_flags.reserve(static_cast<size_t>(b * max_seq_len));
  for (int64_t i = 0; i < b; ++i) {
    tokenizers::EncodedPair enc = tokenizer_->EncodePair(
        texts_a[static_cast<size_t>(i)], texts_b[static_cast<size_t>(i)],
        max_seq_len);
    batch.ids.insert(batch.ids.end(), enc.ids.begin(), enc.ids.end());
    batch.segment_ids.insert(batch.segment_ids.end(), enc.segment_ids.begin(),
                             enc.segment_ids.end());
    pad_flags.insert(pad_flags.end(), enc.attention_mask.begin(),
                     enc.attention_mask.end());
  }
  batch.attention_mask = models::Batch::MakeMask(pad_flags, b, max_seq_len);
  return batch;
}

std::vector<EpochRecord> EntityMatcher::FineTune(const data::EmDataset& dataset,
                                                 const FineTuneOptions& options,
                                                 bool eval_each_epoch) {
  eval_max_seq_len_ = options.max_seq_len;
  rng_.Seed(options.seed);
  if (options.dropout >= 0.0f) {
    classifier_->backbone()->set_dropout(options.dropout);
  }

  nn::AdamOptions adam_opts;
  adam_opts.lr = options.learning_rate;
  nn::Adam adam(classifier_->Parameters(), adam_opts);

  // Computed after the (possibly oversampled) order is built, below.
  int64_t steps_per_epoch = 0;
  std::vector<EpochRecord> series;
  if (eval_each_epoch) {
    // Epoch 0: zero-shot performance of the pre-trained model + untrained
    // head (the paper's "before fine tuning" data point).
    EpochRecord zero;
    zero.epoch = 0;
    zero.test_f1 = Evaluate(dataset, dataset.test).f1;
    series.push_back(zero);
  }

  // Epoch ordering; with balance_classes each positive pair appears
  // ~neg/pos times per epoch so the loss is not dominated by the majority
  // class (equivalent to DeepMatcher's positive-class weighting).
  std::vector<size_t> order;
  {
    size_t positives = 0;
    for (const auto& p : dataset.train) positives += p.label == 1 ? 1 : 0;
    const size_t negatives = dataset.train.size() - positives;
    const size_t repeat =
        options.balance_classes && positives > 0
            ? std::max<size_t>(1, (negatives + positives / 2) / positives)
            : 1;
    for (size_t i = 0; i < dataset.train.size(); ++i) {
      const size_t copies = dataset.train[i].label == 1 ? repeat : 1;
      for (size_t c2 = 0; c2 < copies; ++c2) order.push_back(i);
    }
  }

  steps_per_epoch = std::max<int64_t>(
      1, (static_cast<int64_t>(order.size()) + options.batch_size - 1) /
             options.batch_size);
  const int64_t total_steps = steps_per_epoch * options.epochs;
  nn::LinearWarmupSchedule schedule(
      options.learning_rate,
      std::max<int64_t>(
          1, static_cast<int64_t>(total_steps * options.warmup_fraction)),
      total_steps);

  obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
  obs::Gauge* loss_gauge = registry->GetGauge("train.loss");
  obs::Gauge* tps_gauge = registry->GetGauge("train.tokens_per_sec");
  obs::Gauge* grad_norm_gauge = registry->GetGauge("train.grad_norm");
  obs::Gauge* lr_gauge = registry->GetGauge("train.learning_rate");
  obs::Counter* epochs_counter = registry->GetCounter("train.epochs");

  int64_t step = 0;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    EpochRecord rec;
    rec.epoch = epoch + 1;
    Timer epoch_timer;
    rng_.Shuffle(&order);
    double epoch_loss = 0;
    int64_t batches = 0;
    {
      EMX_TRACE_SPAN("train.epoch", [&] {
        return obs::KeyValues(
            {{"epoch", epoch + 1},
             {"pairs", static_cast<int64_t>(order.size())}});
      });
      for (size_t start = 0; start < order.size();
           start += static_cast<size_t>(options.batch_size)) {
        const size_t end = std::min(
            order.size(), start + static_cast<size_t>(options.batch_size));
        const bool last_batch =
            end >= order.size();
        models::Batch batch;
        std::vector<int64_t> labels;
        {
          EMX_TRACE_SPAN("train.tokenize");
          Timer t;
          std::vector<std::string> texts_a, texts_b;
          for (size_t k = start; k < end; ++k) {
            const auto& pair = dataset.train[order[k]];
            texts_a.push_back(dataset.SerializeA(pair));
            texts_b.push_back(dataset.SerializeB(pair));
            labels.push_back(pair.label);
          }
          batch = BuildBatch(texts_a, texts_b, options.max_seq_len);
          rec.tokenize_seconds += t.ElapsedSeconds();
        }
        adam.ZeroGrad();
        Variable loss;
        {
          EMX_TRACE_SPAN("train.forward");
          Timer t;
          Variable logits = classifier_->Logits(batch, /*train=*/true, &rng_);
          loss = ag::CrossEntropy(logits, labels);
          rec.forward_seconds += t.ElapsedSeconds();
        }
        epoch_loss += loss.value()[0];
        ++batches;
        {
          EMX_TRACE_SPAN("train.backward");
          Timer t;
          Backward(loss);
          rec.backward_seconds += t.ElapsedSeconds();
        }
        if (last_batch) {
          rec.grad_norm = GradL2Norm(classifier_->Parameters());
        }
        {
          EMX_TRACE_SPAN("train.optimizer");
          Timer t;
          rec.learning_rate = schedule.LearningRate(step);
          adam.Step(schedule.LearningRate(step++));
          rec.optimizer_seconds += t.ElapsedSeconds();
        }
      }
    }
    const double train_seconds = epoch_timer.ElapsedSeconds();

    rec.train_loss = epoch_loss / std::max<int64_t>(1, batches);
    rec.seconds = train_seconds;
    const double tokens = static_cast<double>(order.size()) *
                          static_cast<double>(options.max_seq_len);
    rec.tokens_per_sec = train_seconds > 0 ? tokens / train_seconds : 0;

    epochs_counter->Add(1);
    loss_gauge->Set(rec.train_loss);
    tps_gauge->Set(rec.tokens_per_sec);
    grad_norm_gauge->Set(rec.grad_norm);
    lr_gauge->Set(rec.learning_rate);
    const TensorMemStats mem = GetTensorMemStats();
    registry->GetGauge("tensor.live_bytes")
        ->Set(static_cast<double>(mem.live_bytes));
    registry->GetGauge("tensor.peak_bytes")
        ->Set(static_cast<double>(mem.peak_bytes));

    if (eval_each_epoch || epoch + 1 == options.epochs) {
      EMX_TRACE_SPAN("train.eval");
      Timer t;
      rec.test_f1 = Evaluate(dataset, dataset.test).f1;
      rec.eval_seconds = t.ElapsedSeconds();
      series.push_back(rec);
    }
  }
  return series;
}

std::vector<int64_t> EntityMatcher::Predict(
    const data::EmDataset& dataset,
    const std::vector<data::RecordPair>& pairs) {
  // Evaluation never back-propagates: skip the tape so the Table 5 /
  // Figures 10-14 benches stop paying the autograd tax.
  NoGradGuard no_grad;
  std::vector<int64_t> preds;
  preds.reserve(pairs.size());
  constexpr int64_t kEvalBatch = 32;
  for (size_t start = 0; start < pairs.size();
       start += static_cast<size_t>(kEvalBatch)) {
    const size_t end =
        std::min(pairs.size(), start + static_cast<size_t>(kEvalBatch));
    std::vector<std::string> texts_a, texts_b;
    for (size_t k = start; k < end; ++k) {
      texts_a.push_back(dataset.SerializeA(pairs[k]));
      texts_b.push_back(dataset.SerializeB(pairs[k]));
    }
    models::Batch batch = BuildBatch(texts_a, texts_b, eval_max_seq_len_);
    for (int64_t p : classifier_->Predict(batch, &rng_)) preds.push_back(p);
  }
  return preds;
}

eval::PrfScores EntityMatcher::Evaluate(
    const data::EmDataset& dataset,
    const std::vector<data::RecordPair>& pairs) {
  std::vector<int64_t> labels;
  labels.reserve(pairs.size());
  for (const auto& p : pairs) labels.push_back(p.label);
  return eval::ComputeScores(Predict(dataset, pairs), labels);
}

double EntityMatcher::MatchProbability(std::string_view text_a,
                                       std::string_view text_b) {
  return MatchProbabilities({std::string(text_a)}, {std::string(text_b)})[0];
}

std::vector<double> EntityMatcher::MatchProbabilities(
    const std::vector<std::string>& texts_a,
    const std::vector<std::string>& texts_b) {
  EMX_CHECK_EQ(texts_a.size(), texts_b.size());
  NoGradGuard no_grad;
  std::vector<double> out;
  out.reserve(texts_a.size());
  constexpr int64_t kEvalBatch = 32;
  for (size_t start = 0; start < texts_a.size();
       start += static_cast<size_t>(kEvalBatch)) {
    const size_t end =
        std::min(texts_a.size(), start + static_cast<size_t>(kEvalBatch));
    std::vector<std::string> slice_a(texts_a.begin() + start,
                                     texts_a.begin() + end);
    std::vector<std::string> slice_b(texts_b.begin() + start,
                                     texts_b.begin() + end);
    models::Batch batch = BuildBatch(slice_a, slice_b, eval_max_seq_len_);
    Variable logits = classifier_->Logits(batch, /*train=*/false, &rng_);
    Tensor probs = ops::Softmax(logits.value());
    for (size_t i = 0; i < end - start; ++i) {
      out.push_back(probs[static_cast<int64_t>(i) * 2 + 1]);
    }
  }
  return out;
}

bool EntityMatcher::Match(std::string_view text_a, std::string_view text_b) {
  return MatchProbability(text_a, text_b) >= 0.5;
}

Status EntityMatcher::Save(const std::string& path) {
  return nn::SaveParameters(path, classifier_->Parameters());
}

Status EntityMatcher::Load(const std::string& path) {
  return nn::LoadParameters(path, classifier_->Parameters());
}

}  // namespace core
}  // namespace emx
