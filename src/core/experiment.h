#ifndef EMX_CORE_EXPERIMENT_H_
#define EMX_CORE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/entity_matcher.h"
#include "data/generators.h"
#include "models/config.h"
#include "pretrain/model_zoo.h"

namespace emx {
namespace core {

/// Configuration of one paper experiment: which dataset (and at what
/// generation scale), the model-zoo settings, the fine-tuning recipe, and
/// how many runs to average (the paper averages five).
struct ExperimentOptions {
  data::GeneratorOptions dataset;
  pretrain::ZooOptions zoo;
  FineTuneOptions fine_tune;
  int64_t runs = 1;
  uint64_t run_seed_base = 1000;
};

/// Per-architecture averaged fine-tuning trajectory — the data behind the
/// paper's Figures 10-14 (F1 vs epoch) and Table 6 (seconds per epoch).
struct ArchSeries {
  models::Architecture arch;
  /// f1_mean[e] is the test-set F1 after e epochs (index 0 = zero-shot),
  /// averaged over `runs`.
  std::vector<double> f1_mean;
  std::vector<double> f1_stddev;
  /// Mean wall-clock seconds per fine-tuning epoch.
  double seconds_per_epoch = 0;
  /// Mean per-epoch phase attribution (Table 6 with a breakdown; the four
  /// phases sum to ~seconds_per_epoch).
  double tokenize_seconds_per_epoch = 0;
  double forward_seconds_per_epoch = 0;
  double backward_seconds_per_epoch = 0;
  double optimizer_seconds_per_epoch = 0;
  /// Mean training tokens/sec across epochs.
  double tokens_per_sec = 0;
  /// Best (peak) mean F1 across epochs.
  double best_f1 = 0;
};

/// Fine-tunes one architecture on one dataset `runs` times and averages
/// the per-epoch F1 series. The pre-trained starting point comes from the
/// zoo cache, so every run starts from the same checkpoint with a
/// different fine-tuning seed — matching the paper's protocol.
ArchSeries RunFineTuneSeries(models::Architecture arch, data::DatasetId dataset,
                             const ExperimentOptions& options);

/// Runs all four architectures (the head-to-head of Section 5.4).
std::vector<ArchSeries> RunAllArchitectures(data::DatasetId dataset,
                                            const ExperimentOptions& options);

/// Formats an aligned text table of F1-vs-epoch series (one column per
/// architecture) — the textual rendering of a paper figure.
std::string FormatFigure(const std::string& title,
                         const std::vector<ArchSeries>& series);

}  // namespace core
}  // namespace emx

#endif  // EMX_CORE_EXPERIMENT_H_
